//! One test suite, four backends: the same session script runs against
//! the in-process [`ShardedService`], the [`WorkerPool`], a
//! [`PoolClient`] handle, and a remote [`PipelinedClient`] over real
//! sockets — all through the [`SolverBackend`] trait, with the verdict
//! streams required to be identical.

use std::sync::Arc;

use lwsnap_service::{
    PipelinedClient, Server, ServiceConfig, ShardedService, SolverBackend, WorkerPool,
};
use lwsnap_solver::{model_satisfies, Lit, SolveResult};

fn lits(cs: &[&[i64]]) -> Vec<Vec<Lit>> {
    cs.iter()
        .map(|c| c.iter().map(|&v| Lit::from_dimacs(v)).collect())
        .collect()
}

/// A deterministic session script: chains, branches, a contradiction,
/// overlapped submissions, release, and a dead-reference probe.
/// Returns the verdict stream.
fn run_script(backend: &dyn SolverBackend, session: u64) -> Vec<Option<SolveResult>> {
    let mut verdicts = Vec::new();
    let root = backend.session_root(session).unwrap();

    // Chain: (1∨2) then (¬1) — SAT both times, model verified.
    let p = backend.solve(root, lits(&[&[1, 2]])).unwrap().unwrap();
    verdicts.push(Some(p.result));
    assert!(model_satisfies(
        &lits(&[&[1, 2]]),
        p.model.as_ref().unwrap()
    ));
    let q = backend.solve(p.problem, lits(&[&[-1]])).unwrap().unwrap();
    verdicts.push(Some(q.result));
    assert!(model_satisfies(
        &lits(&[&[1, 2], &[-1]]),
        q.model.as_ref().unwrap()
    ));

    // Branch the SAME parent divergently — multi-path isolation.
    let a = backend.solve(p.problem, lits(&[&[1]])).unwrap().unwrap();
    let b = backend
        .solve(p.problem, lits(&[&[-1], &[2]]))
        .unwrap()
        .unwrap();
    verdicts.push(Some(a.result));
    verdicts.push(Some(b.result));
    assert!(a.model.as_ref().unwrap()[0]);
    assert!(!b.model.as_ref().unwrap()[0]);

    // A contradiction is UNSAT with no model.
    let u = backend
        .solve(q.problem, lits(&[&[1], &[2], &[-2]]))
        .unwrap()
        .unwrap();
    verdicts.push(Some(u.result));
    assert!(u.model.is_none());

    // Overlapped submissions redeemed out of order.
    let t1 = backend.submit(a.problem, lits(&[&[3]])).unwrap();
    let t2 = backend.submit(b.problem, lits(&[&[4]])).unwrap();
    let r2 = backend.wait(t2).unwrap().unwrap();
    let r1 = backend.wait(t1).unwrap().unwrap();
    verdicts.push(Some(r1.result));
    verdicts.push(Some(r2.result));

    // Batch through the provided wrapper, in request order.
    let batch = backend
        .solve_batch(vec![
            (r1.problem, lits(&[&[5]])),
            (r2.problem, lits(&[&[-5]])),
        ])
        .unwrap();
    for reply in &batch {
        verdicts.push(reply.as_ref().map(|r| r.result));
    }

    // Release kills the reference; solving it answers None, not Err.
    backend.release(r1.problem).unwrap();
    let dead = backend.solve(r1.problem, lits(&[&[6]])).unwrap();
    verdicts.push(dead.map(|r| r.result));
    assert!(verdicts.last().unwrap().is_none());

    verdicts
}

#[test]
fn all_backends_agree_on_the_script() {
    // Reference: the in-process sharded service.
    let reference = {
        let service = ShardedService::new(ServiceConfig::new(4));
        run_script(&service, 11)
    };
    assert_eq!(reference.len(), 10);

    // Worker pool (and its cloneable client handle).
    {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(4)));
        let pool = WorkerPool::new(Arc::clone(&service), 3);
        assert_eq!(run_script(&pool, 11), reference, "WorkerPool diverged");
        assert_eq!(
            run_script(&pool.client(), 12),
            reference,
            "PoolClient diverged"
        );
        pool.shutdown();
    }

    // Remote: the pipelined client against a real epoll server.
    {
        let server = Server::start("127.0.0.1:0", ServiceConfig::new(4), 2).unwrap();
        let client = PipelinedClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            run_script(&client, 11),
            reference,
            "PipelinedClient diverged"
        );
        // The trait surface also exposes stats uniformly.
        assert!(client.stats().unwrap().queries >= 9);
        server.shutdown();
    }
}

#[test]
fn trait_objects_are_shareable_across_threads() {
    // Arc<dyn SolverBackend> + concurrent sessions: the shape every
    // driver (par_explore, loadgen) uses.
    let service = Arc::new(ShardedService::new(ServiceConfig::new(8)));
    let pool = WorkerPool::new(Arc::clone(&service), 4);
    let backend: Arc<dyn SolverBackend> = Arc::new(pool.client());
    let handles: Vec<_> = (0..8u64)
        .map(|session| {
            let backend = Arc::clone(&backend);
            std::thread::spawn(move || {
                let root = backend.session_root(session).unwrap();
                let mut cur = root;
                for step in 0..4i64 {
                    let v = (session as i64 * 4 + step) % 30 + 1;
                    let reply = backend
                        .solve(cur, lits(&[&[v]]))
                        .unwrap()
                        .expect("live chain");
                    assert_eq!(reply.result, SolveResult::Sat);
                    cur = reply.problem;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(service.stats().total().queries, 32);
    pool.shutdown();
}
