//! End-to-end tests of the TCP front end: concurrent clients over real
//! sockets, model verification, stats, eviction, daemon shutdown, and
//! pipelined (tagged, out-of-order) sessions on the epoll reactor.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use lwsnap_service::{
    protocol, Disconnected, PipelinedClient, Response, Server, ServiceConfig, ShardedService,
    SolverBackend, TcpClient,
};

fn assert_model_satisfies(model: &[bool], stack: &[Vec<i64>]) {
    assert!(
        lwsnap_solver::model_satisfies(&protocol::clauses_to_lits(stack), model),
        "stack {stack:?} unsatisfied by {model:?}"
    );
}

#[test]
fn tcp_session_roundtrip_with_verification() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(4), 2).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4u64)
        .map(|session| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                let root = client.session_root(session).unwrap();
                let mut stack: Vec<Vec<i64>> = Vec::new();
                let mut cur = root;
                for step in 0..5 {
                    // A chain of satisfiable constraints unique per session.
                    let v = (session * 5 + step + 1) as i64;
                    let clauses = vec![vec![v, v + 1], vec![-v, v + 1]];
                    stack.extend(clauses.clone());
                    let response = client.solve(cur, &clauses).unwrap();
                    let Response::Solved {
                        problem,
                        sat,
                        model,
                        ..
                    } = response
                    else {
                        panic!("expected Solved");
                    };
                    assert!(sat, "chain stays satisfiable");
                    assert_model_satisfies(&model.unwrap(), &stack);
                    cur = problem;
                }
                cur
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let mut client = TcpClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.queries, 20, "4 sessions × 5 queries");
    assert_eq!(stats.rederivations, 0, "no eviction configured");

    let final_stats = client.shutdown_server().unwrap();
    assert_eq!(final_stats.queries, 20);
    let worker_stats = server.wait();
    assert_eq!(worker_stats.len(), 2);
    assert_eq!(worker_stats.iter().map(|w| w.jobs).sum::<u64>(), 20);
}

#[test]
fn tcp_surfaces_dead_references_and_eviction() {
    let config = ServiceConfig::new(2).with_snapshot_capacity(2);
    let server = Server::start("127.0.0.1:0", config, 2).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();

    let root = client.session_root(7).unwrap();
    // March a chain past the capacity so early nodes get evicted.
    let mut refs = vec![root];
    let mut cur = root;
    for v in 1..=5i64 {
        let Response::Solved { problem, sat, .. } = client.solve(cur, &[vec![v]]).unwrap() else {
            panic!("expected Solved");
        };
        assert!(sat);
        refs.push(problem);
        cur = problem;
    }
    // Query an early (evicted) node: still answers, flags the replay.
    let Response::Solved { sat, rederived, .. } = client.solve(refs[1], &[vec![6]]).unwrap() else {
        panic!("expected Solved");
    };
    assert!(sat);
    assert!(rederived, "early node was evicted and replayed");
    let stats = client.stats().unwrap();
    assert!(stats.evictions > 0);
    assert!(stats.rederivations > 0);
    assert!(stats.replayed_clauses > 0);

    // A wire id naming a shard the service does not have is a decode
    // error (satellite: no silent acceptance of arbitrary u64s); one
    // naming a different cluster NODE is the typed routing error ...
    let bad_shard = 0xbeefu64 << 32 | 1; // node 0, shard 0xbeef
    let err = client.release(bad_shard).unwrap_err();
    assert!(
        err.to_string().contains("shard index"),
        "expected BadShard, got: {err}"
    );
    let err = client.solve(bad_shard, &[vec![1]]).unwrap_err();
    assert!(err.to_string().contains("shard index"));
    let err = client.release(0xdead_beef_0000_0001).unwrap_err();
    assert!(
        err.to_string().contains("routed to node 57005"),
        "expected WrongNode, got: {err}"
    );
    let err = client.solve(0xdead_beef_0000_0001, &[vec![1]]).unwrap_err();
    assert!(err.to_string().contains("this is node 0"));
    // ... while releasing an in-range-but-dead id stays harmless and
    // idempotent.
    client.release((1u64 << 32) | 0xbeef).unwrap();
    client.release(refs[2]).unwrap();
    let err = client.solve(refs[2], &[vec![9]]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

    drop(client);
    server.shutdown();
}

#[test]
fn pipelined_client_completes_out_of_order_submissions() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(8), 4).unwrap();
    let client = PipelinedClient::connect(server.local_addr()).unwrap();
    let root = client.session_root(3).unwrap();

    // Submit a window of independent solves, then wait in REVERSE
    // order: completions must match their tickets, not arrival order.
    let lits = |v: i64| vec![vec![lwsnap_solver::Lit::from_dimacs(v)]];
    let tickets: Vec<_> = (1..=8i64)
        .map(|v| client.submit(root, lits(v)).unwrap())
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate().rev() {
        let reply = client.wait(ticket).unwrap().expect("live root");
        assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
        let model = reply.model.unwrap();
        assert!(model[i], "reply {i} answers its own query");
    }
    // Dead references answer None through the trait, like in-process.
    let dead = client.submit(root, lits(1)).unwrap();
    let alive = client.wait(dead).unwrap().unwrap();
    client.release(alive.problem).unwrap();
    let gone = client.submit(alive.problem, lits(2)).unwrap();
    assert!(client.wait(gone).unwrap().is_none());

    // 8 window solves + 1 live solve; the dead-reference attempt never
    // reaches a solver.
    assert_eq!(client.stats().unwrap().queries, 9);
    client.shutdown_server().unwrap();
    server.wait();
}

/// The acceptance bar: ≥ 64 concurrent pipelined sessions multiplexed
/// on ONE reactor thread, each keeping a depth-8 window in flight, all
/// models verified.
#[test]
fn sixty_four_pipelined_sessions_on_one_reactor() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(16), 4).unwrap();
    let addr = server.local_addr();
    const SESSIONS: u64 = 64;
    const DEPTH: i64 = 8;

    let handles: Vec<_> = (0..SESSIONS)
        .map(|session| {
            std::thread::spawn(move || {
                let client = PipelinedClient::connect(addr).unwrap();
                let root = client.session_root(session).unwrap();
                // Depth-8 pipelined window of independent constraints.
                let tickets: Vec<_> = (0..DEPTH)
                    .map(|step| {
                        let v = (session as i64 * DEPTH + step) % 50 + 1;
                        let clauses = vec![
                            vec![lwsnap_solver::Lit::from_dimacs(v)],
                            vec![
                                lwsnap_solver::Lit::from_dimacs(-v),
                                lwsnap_solver::Lit::from_dimacs(v + 1),
                            ],
                        ];
                        (v, client.submit(root, clauses).unwrap())
                    })
                    .collect();
                for (v, ticket) in tickets {
                    let reply = client.wait(ticket).unwrap().expect("live root");
                    assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
                    let model = reply.model.unwrap();
                    let idx = (v - 1) as usize;
                    assert!(model[idx] && model[idx + 1], "v{v} and v{} set", v + 1);
                    client.release(reply.problem).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let mut probe = TcpClient::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert_eq!(stats.queries, SESSIONS * DEPTH as u64);
    probe.shutdown_server().unwrap();
    server.wait();
}

/// Backpressure regression: a single connection pipelines far more
/// requests than the server's per-connection in-flight cap (1024); the
/// reactor must throttle reads mid-burst and resume from its buffered
/// bytes as completions free capacity — every request still answers.
#[test]
fn overdriven_pipeline_is_throttled_not_dropped() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(8), 4).unwrap();
    let client = PipelinedClient::connect(server.local_addr()).unwrap();
    let root = client.session_root(5).unwrap();
    const BURST: usize = 3000;
    let tickets: Vec<_> = (0..BURST)
        .map(|i| {
            let v = (i % 60 + 1) as i64;
            client
                .submit(root, vec![vec![lwsnap_solver::Lit::from_dimacs(v)]])
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        let reply = client.wait(ticket).unwrap().expect("live root");
        assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
    }
    assert_eq!(client.stats().unwrap().queries, BURST as u64);
    client.shutdown_server().unwrap();
    server.wait();
}

/// Satellite: `solve_batch` on a pipelined connection corks the whole
/// window — all frames written under one writer lock, one flush — and
/// still answers in request order with correct per-request replies.
#[test]
fn corked_batch_answers_in_request_order() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(8), 4).unwrap();
    let client = PipelinedClient::connect(server.local_addr()).unwrap();
    let root = client.session_root(9).unwrap();
    let lits = |v: i64| vec![vec![lwsnap_solver::Lit::from_dimacs(v)]];
    let requests: Vec<_> = (1..=32i64).map(|v| (root, lits(v))).collect();
    let replies = SolverBackend::solve_batch(&client, requests).unwrap();
    assert_eq!(replies.len(), 32);
    for (i, reply) in replies.iter().enumerate() {
        let reply = reply.as_ref().expect("live root");
        assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
        assert!(
            reply.model.as_ref().unwrap()[i],
            "reply {i} answers v{}",
            i + 1
        );
    }
    // A dead reference inside a corked window answers None in place.
    let dead = replies[0].as_ref().unwrap().problem;
    client.release(dead).unwrap();
    let mixed = SolverBackend::solve_batch(
        &client,
        vec![(root, lits(40)), (dead, lits(41)), (root, lits(42))],
    )
    .unwrap();
    assert!(mixed[0].is_some());
    assert!(mixed[1].is_none(), "dead reference answers None in order");
    assert!(mixed[2].is_some());
    client.shutdown_server().unwrap();
    server.wait();
}

#[test]
fn v1_and_pipelined_clients_share_one_server() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(4), 2).unwrap();
    let addr = server.local_addr();
    let mut old = TcpClient::connect(addr).unwrap();
    let new = PipelinedClient::connect(addr).unwrap();

    let root_old = old.session_root(1).unwrap();
    let root_new = new.session_root(1).unwrap();
    assert_eq!(root_old, root_new.to_wire(), "same session, same root");

    let Response::Solved { sat: true, .. } = old.solve(root_old, &[vec![5]]).unwrap() else {
        panic!("expected SAT");
    };
    let reply = new
        .solve(root_new, vec![vec![lwsnap_solver::Lit::from_dimacs(-5)]])
        .unwrap()
        .unwrap();
    assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
    assert_eq!(old.stats().unwrap().queries, 2);
    server.shutdown();
}

/// Satellite: a clean server close between frames is the typed
/// [`Disconnected`] error; a stream dying mid-frame is `UnexpectedEof`.
#[test]
fn clean_disconnect_and_truncation_are_distinct_errors() {
    // Fake server 1: reads the request, closes cleanly at the boundary.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf); // swallow the request, reply nothing
                                  // drop(s): clean FIN between frames
    });
    let mut client = TcpClient::connect(addr).unwrap();
    let err = client.call(&protocol::Request::Stats).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
    assert!(
        err.get_ref().is_some_and(|e| e.is::<Disconnected>()),
        "clean close carries the typed Disconnected payload: {err:?}"
    );
    srv.join().unwrap();

    // Fake server 2: replies with a truncated frame, then closes.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf);
        // 16-byte frame promised, 2 bytes delivered.
        let mut partial = 16u32.to_le_bytes().to_vec();
        partial.extend_from_slice(&[1, 2]);
        s.write_all(&partial).unwrap();
    });
    let mut client = TcpClient::connect(addr).unwrap();
    let err = client.call(&protocol::Request::Stats).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    assert!(
        err.get_ref().is_none_or(|e| !e.is::<Disconnected>()),
        "truncation must NOT look like a clean disconnect"
    );
    srv.join().unwrap();
}

/// Satellite: the client read timeout bounds a call against a hung
/// server instead of blocking forever.
#[test]
fn client_read_timeout_detects_hung_server() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        // Read the request and then just sit on it.
        let mut buf = [0u8; 256];
        let _ = s.read(&mut buf);
        std::thread::sleep(Duration::from_millis(400));
    });
    let mut client = TcpClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let start = std::time::Instant::now();
    let err = client.call(&protocol::Request::Stats).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "timeout error, got {err:?}"
    );
    assert!(start.elapsed() < Duration::from_millis(350), "bounded wait");
    srv.join().unwrap();
}

/// A garbage header on the wire gets an error response and the
/// connection is closed — the reactor must not wedge or crash.
#[test]
fn framing_garbage_gets_an_error_then_close() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(2), 1).unwrap();
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    // Length prefix far beyond MAX_FRAME.
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    let mut response = Vec::new();
    raw.read_to_end(&mut response).unwrap(); // server closes after the error frame
    let mut r = response.as_slice();
    let payload = protocol::read_frame(&mut r).unwrap().expect("error frame");
    let Response::Error(msg) = Response::decode(&payload).unwrap() else {
        panic!("expected an error response");
    };
    assert!(msg.contains("length"), "framing diagnosis: {msg}");
    // The server is still healthy for well-formed clients.
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    assert_eq!(client.stats().unwrap().queries, 0);
    server.shutdown();
}

#[test]
fn server_over_existing_service_shares_state() {
    let service = Arc::new(ShardedService::new(ServiceConfig::new(2)));
    // Pre-populate in-process, then read through TCP.
    let root = service.session_root(3);
    let reply = service
        .solve(root, &[vec![lwsnap_solver::Lit::from_dimacs(1)]])
        .unwrap();
    let server = Server::serve("127.0.0.1:0", Arc::clone(&service), 1).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    let Response::Solved { sat, model, .. } =
        client.solve(reply.problem.to_wire(), &[vec![2]]).unwrap()
    else {
        panic!("expected Solved");
    };
    assert!(sat);
    let model = model.unwrap();
    assert!(
        model[0] && model[1],
        "both in-process and TCP constraints hold"
    );
    assert_eq!(client.stats().unwrap().queries, 2);
    server.shutdown();
}
