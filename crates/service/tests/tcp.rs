//! End-to-end tests of the TCP front end: concurrent clients over real
//! sockets, model verification, stats, eviction, and daemon shutdown.

use std::sync::Arc;

use lwsnap_service::{protocol, Response, Server, ServiceConfig, ShardedService, TcpClient};

fn assert_model_satisfies(model: &[bool], stack: &[Vec<i64>]) {
    assert!(
        lwsnap_solver::model_satisfies(&protocol::clauses_to_lits(stack), model),
        "stack {stack:?} unsatisfied by {model:?}"
    );
}

#[test]
fn tcp_session_roundtrip_with_verification() {
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(4), 2).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..4u64)
        .map(|session| {
            std::thread::spawn(move || {
                let mut client = TcpClient::connect(addr).unwrap();
                let root = client.session_root(session).unwrap();
                let mut stack: Vec<Vec<i64>> = Vec::new();
                let mut cur = root;
                for step in 0..5 {
                    // A chain of satisfiable constraints unique per session.
                    let v = (session * 5 + step + 1) as i64;
                    let clauses = vec![vec![v, v + 1], vec![-v, v + 1]];
                    stack.extend(clauses.clone());
                    let response = client.solve(cur, &clauses).unwrap();
                    let Response::Solved {
                        problem,
                        sat,
                        model,
                        ..
                    } = response
                    else {
                        panic!("expected Solved");
                    };
                    assert!(sat, "chain stays satisfiable");
                    assert_model_satisfies(&model.unwrap(), &stack);
                    cur = problem;
                }
                cur
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let mut client = TcpClient::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.shards, 4);
    assert_eq!(stats.queries, 20, "4 sessions × 5 queries");
    assert_eq!(stats.rederivations, 0, "no eviction configured");

    let final_stats = client.shutdown_server().unwrap();
    assert_eq!(final_stats.queries, 20);
    let worker_stats = server.wait();
    assert_eq!(worker_stats.len(), 2);
    assert_eq!(worker_stats.iter().map(|w| w.jobs).sum::<u64>(), 20);
}

#[test]
fn tcp_surfaces_dead_references_and_eviction() {
    let config = ServiceConfig::new(2).with_snapshot_capacity(2);
    let server = Server::start("127.0.0.1:0", config, 2).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();

    let root = client.session_root(7).unwrap();
    // March a chain past the capacity so early nodes get evicted.
    let mut refs = vec![root];
    let mut cur = root;
    for v in 1..=5i64 {
        let Response::Solved { problem, sat, .. } = client.solve(cur, &[vec![v]]).unwrap() else {
            panic!("expected Solved");
        };
        assert!(sat);
        refs.push(problem);
        cur = problem;
    }
    // Query an early (evicted) node: still answers, flags the replay.
    let Response::Solved { sat, rederived, .. } = client.solve(refs[1], &[vec![6]]).unwrap() else {
        panic!("expected Solved");
    };
    assert!(sat);
    assert!(rederived, "early node was evicted and replayed");
    let stats = client.stats().unwrap();
    assert!(stats.evictions > 0);
    assert!(stats.rederivations > 0);
    assert!(stats.replayed_clauses > 0);

    // Released refs turn into protocol-level errors (and releasing a
    // bogus id is harmless and idempotent).
    client.release(0xdead_beef_0000_0001).unwrap();
    client.release(refs[2]).unwrap();
    let err = client.solve(refs[2], &[vec![9]]).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

    drop(client);
    server.shutdown();
}

#[test]
fn server_over_existing_service_shares_state() {
    let service = Arc::new(ShardedService::new(ServiceConfig::new(2)));
    // Pre-populate in-process, then read through TCP.
    let root = service.session_root(3);
    let reply = service
        .solve(root, &[vec![lwsnap_solver::Lit::from_dimacs(1)]])
        .unwrap();
    let server = Server::serve("127.0.0.1:0", Arc::clone(&service), 1).unwrap();
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    let Response::Solved { sat, model, .. } =
        client.solve(reply.problem.to_wire(), &[vec![2]]).unwrap()
    else {
        panic!("expected Solved");
    };
    assert!(sat);
    let model = model.unwrap();
    assert!(
        model[0] && model[1],
        "both in-process and TCP constraints hold"
    );
    assert_eq!(client.stats().unwrap().queries, 2);
    server.shutdown();
}
