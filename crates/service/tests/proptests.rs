//! Property test: for random constraint trees, the sharded, concurrent,
//! eviction-bounded service answers exactly like the sequential
//! single-shard `SolverService` and like from-scratch solving.
//!
//! This is the reproducibility-under-concurrency guarantee: worker
//! scheduling, shard placement and LRU eviction may vary freely, but
//! SAT/UNSAT verdicts are pinned and every returned model must satisfy
//! the node's full constraint stack.

use std::sync::Arc;

use lwsnap_service::{ProblemId, ServiceConfig, ShardedService, WorkerPool};
use lwsnap_solver::{model_satisfies, Lit, SolveResult, SolverService};
use proptest::prelude::*;

/// One node of a random constraint tree: which earlier node to extend
/// (`selector % candidates` picks the parent; 0 is the root) plus the
/// incremental clauses, DIMACS-encoded over ≤ 6 variables.
type TreeNode = (usize, Vec<Vec<i64>>);

fn tree_strategy() -> impl Strategy<Value = Vec<TreeNode>> {
    let lit = (1i64..=6, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    let clause = proptest::collection::vec(lit, 1..4);
    let node = (0usize..64, proptest::collection::vec(clause, 0..4));
    proptest::collection::vec(node, 1..8)
}

fn to_lits(clauses: &[Vec<i64>]) -> Vec<Vec<Lit>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|&v| Lit::from_dimacs(v)).collect())
        .collect()
}

fn stack_satisfied(stack: &[Vec<i64>], model: &[bool]) -> bool {
    model_satisfies(&to_lits(stack), model)
}

/// Parent index (into the node list, or `None` = root) for each node.
fn parents(tree: &[TreeNode]) -> Vec<Option<usize>> {
    tree.iter()
        .enumerate()
        .map(|(i, (selector, _))| {
            // Node i may extend the root or any of nodes 0..i.
            let pick = selector % (i + 1);
            if pick == 0 {
                None
            } else {
                Some(pick - 1)
            }
        })
        .collect()
}

/// Nodes grouped by tree depth (every node's parent is in an earlier
/// group, so each group is an independently solvable batch).
fn levels(parents: &[Option<usize>]) -> Vec<Vec<usize>> {
    let mut depth = vec![0usize; parents.len()];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, parent) in parents.iter().enumerate() {
        depth[i] = parent.map_or(0, |p| depth[p] + 1);
        if groups.len() <= depth[i] {
            groups.resize_with(depth[i] + 1, Vec::new);
        }
        groups[depth[i]].push(i);
    }
    groups
}

/// Full clause stack of node `i` (its constraint path from the root).
fn stack_of(tree: &[TreeNode], parents: &[Option<usize>], i: usize) -> Vec<Vec<i64>> {
    let mut stack = match parents[i] {
        Some(p) => stack_of(tree, parents, p),
        None => Vec::new(),
    };
    stack.extend(tree[i].1.iter().cloned());
    stack
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_concurrent_equals_sequential_equals_scratch(tree in tree_strategy()) {
        let parents = parents(&tree);
        let levels = levels(&parents);

        // Reference 1: the sequential single-shard service.
        let mut sequential = SolverService::new();
        let mut seq_refs = Vec::with_capacity(tree.len());
        let mut seq_results = Vec::with_capacity(tree.len());
        for (i, (_, clauses)) in tree.iter().enumerate() {
            let parent = match parents[i] {
                Some(p) => seq_refs[p],
                None => sequential.root(),
            };
            let reply = sequential.solve(parent, &to_lits(clauses)).unwrap();
            if let Some(model) = &reply.model {
                let stack = stack_of(&tree, &parents, i);
                prop_assert!(
                    stack_satisfied(&stack, model),
                    "sequential model violates node {i}'s stack"
                );
            }
            seq_refs.push(reply.problem);
            seq_results.push(reply.result);
        }

        // Reference 2: from-scratch solving of every node's full stack.
        for (i, result) in seq_results.iter().enumerate() {
            let stack = stack_of(&tree, &parents, i);
            let (scratch, _) = SolverService::solve_scratch(&to_lits(&stack));
            prop_assert_eq!(scratch, *result, "scratch disagrees at node {}", i);
        }

        // Subject: two concurrent copies of the tree on the sharded
        // service (tight eviction budget), driven level-by-level through
        // the worker pool in cross-session batches.
        let config = ServiceConfig::new(2).with_snapshot_capacity(2);
        let service = Arc::new(ShardedService::new(config));
        let pool = WorkerPool::new(Arc::clone(&service), 4);
        let client = pool.client();
        let sessions: Vec<u64> = vec![0, 1];
        let mut ids: Vec<Vec<Option<ProblemId>>> =
            vec![vec![None; tree.len()]; sessions.len()];
        for level in &levels {
            let mut batch = Vec::new();
            let mut slots = Vec::new();
            for (s, &session) in sessions.iter().enumerate() {
                for &i in level {
                    let parent = match parents[i] {
                        Some(p) => ids[s][p].unwrap(),
                        None => service.session_root(session),
                    };
                    batch.push((parent, to_lits(&tree[i].1)));
                    slots.push((s, i));
                }
            }
            let replies = client.solve_batch(batch);
            for ((s, i), reply) in slots.into_iter().zip(replies) {
                let reply = reply.expect("live parent reference");
                prop_assert_eq!(
                    reply.result,
                    seq_results[i],
                    "sharded session {} disagrees at node {}", s, i
                );
                if let Some(model) = &reply.model {
                    prop_assert!(reply.result == SolveResult::Sat);
                    let stack = stack_of(&tree, &parents, i);
                    prop_assert!(
                        stack_satisfied(&stack, model),
                        "sharded model violates node {i}'s stack"
                    );
                }
                ids[s][i] = Some(reply.problem);
            }
        }
        pool.shutdown();

        // The eviction budget must actually bound residency.
        let stats = service.stats();
        for shard in &stats.shards {
            prop_assert!(
                shard.resident_snapshots <= 3,
                "root + capacity 2 exceeded: {}",
                shard.resident_snapshots
            );
        }
    }
}
