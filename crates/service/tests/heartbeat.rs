//! Heartbeat failure detection, end to end: servers detect a dead peer
//! and self-promote its sessions before any client request trips over
//! the corpse; client-side heartbeats fail over proactively; and a
//! half-dead node (answers pings, stalls solves) is caught by the
//! per-request deadline instead — the two detectors cover each other's
//! blind spots.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use lwsnap_service::protocol::{
    read_any_frame, write_frame, write_tagged_frame, Request, Response,
};
use lwsnap_service::{
    Cluster, ClusterBackend, ProblemId, ServiceConfig, ShardedService, SolverBackend,
};
use lwsnap_solver::Lit;

fn lits(c: &[i64]) -> Vec<Vec<Lit>> {
    vec![c.iter().map(|&v| Lit::from_dimacs(v)).collect()]
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, deadline: Duration, mut probe: impl FnMut() -> bool) {
    let started = Instant::now();
    while !probe() {
        assert!(
            started.elapsed() < deadline,
            "timed out after {deadline:?} waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The tentpole's proactive path: kill a node and issue NO client
/// request at all — the surviving servers' heartbeat threads detect the
/// death on their own, bump the membership epoch, and self-promote the
/// victim's sessions from their replica logs. The counters move while
/// every client is silent; when a client finally does ask, the answers
/// are bit-identical to a mirror that never saw a failure.
#[test]
fn servers_self_promote_a_dead_nodes_sessions() {
    let mut cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let mirror = ShardedService::new(ServiceConfig::new(2));

    // Sessions on every node, a few steps deep.
    let sessions: Vec<u64> = (0..6).collect();
    let mut remote: Vec<ProblemId> = Vec::new();
    let mut local: Vec<ProblemId> = Vec::new();
    for &s in &sessions {
        let mut r = backend.session_root(s).unwrap();
        let mut l = mirror.session_root(s);
        for step in 0..3i64 {
            let v = (s as i64 + step) % 5 + 1;
            r = backend.solve(r, lits(&[v])).unwrap().unwrap().problem;
            l = mirror.solve(l, &lits(&[v])).unwrap().problem;
        }
        remote.push(r);
        local.push(l);
    }

    let victim = backend.ring().node_for(sessions[0]).unwrap();
    cluster.kill_node(victim);

    // No client request from here until the servers have acted. The
    // survivors' heartbeat threads (50ms jittered interval, 3-miss
    // suspicion) must notice on their own: epoch bumped, the victim's
    // sessions promoted out of the replica logs.
    wait_for(
        "server-side heartbeat promotion",
        Duration::from_secs(10),
        || {
            (0..3u16).filter(|&n| n != victim).any(|n| {
                let server = cluster.server(n).expect("survivor is running");
                let (_, promotions, failovers) = server.replicas().counters();
                server.epoch() >= 1 && promotions > 0 && failovers > 0
            })
        },
    );

    // Only now does a client speak again — and every session continues
    // bit-identically, through its old ids.
    for (i, &s) in sessions.iter().enumerate() {
        let v = (s as i64) % 5 + 1;
        let r = backend.solve(remote[i], lits(&[-v])).unwrap().unwrap();
        let l = mirror.solve(local[i], &lits(&[-v])).unwrap();
        assert_eq!(r.result, l.result, "session {s} verdict split after kill");
        assert_eq!(r.model, l.model, "session {s} witness split after kill");
        assert_ne!(r.problem.node(), victim, "session {s} left the victim");
    }
    backend.shutdown();
    cluster.shutdown();
}

/// The client-side detector: with heartbeats started, a killed node is
/// failed over while the client issues no requests — the failover
/// counter attributes the rescue to the heartbeat thread, the ring
/// drops the victim, and the epoch moves.
#[test]
fn client_heartbeats_fail_over_before_any_request() {
    let mut cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let mirror = ShardedService::new(ServiceConfig::new(2));

    let session = 4u64;
    let mut r = backend.session_root(session).unwrap();
    let mut l = mirror.session_root(session);
    for v in 1..=3i64 {
        r = backend.solve(r, lits(&[v])).unwrap().unwrap().problem;
        l = mirror.solve(l, &lits(&[v])).unwrap().problem;
    }
    let victim = backend.ring().node_for(session).unwrap();
    let epoch_before = backend.epoch();

    backend.start_heartbeat(Duration::from_millis(25), 3);
    cluster.kill_node(victim);

    // The probe loop — not a request error — must retire the victim.
    wait_for("client heartbeat failover", Duration::from_secs(10), || {
        backend.heartbeat_failovers() >= 1
    });
    assert!(backend.heartbeat_misses() >= 3, "suspicion needs misses");
    assert!(backend.epoch() > epoch_before, "failover bumps the epoch");
    assert_ne!(
        backend.ring().node_for(session).unwrap(),
        victim,
        "the ring healed before any request"
    );

    // The next request rides the already-healed ring.
    let reply = backend.solve(r, lits(&[-1])).unwrap().unwrap();
    let expect = mirror.solve(l, &lits(&[-1])).unwrap();
    assert_eq!(reply.result, expect.result, "verdict split after failover");
    assert_eq!(reply.model, expect.model, "witness split after failover");
    backend.shutdown();
    cluster.shutdown();
}

/// Reactor-affinity regression (satellite): with two reactors per
/// node, each peer's pipelined connection — shared by the forward
/// plane and the heartbeat prober — is accepted by exactly one reactor
/// and stays there, so peer `Ping`/`Forward` frames never interleave
/// across event loops. Steady-state traffic on a healthy 2-reactor
/// cluster must therefore record zero heartbeat misses and zero epoch
/// movement, while answers stay bit-identical to a local mirror.
#[test]
fn peer_traffic_rides_one_reactor_without_heartbeat_misses() {
    use std::sync::atomic::Ordering;

    let cluster = Cluster::start_local_with(3, ServiceConfig::new(2), 1, 2).unwrap();
    let backend = cluster.connect().unwrap();
    let mirror = ShardedService::new(ServiceConfig::new(2));

    for s in 0..6u64 {
        let mut r = backend.session_root(s).unwrap();
        let mut l = mirror.session_root(s);
        for step in 0..4i64 {
            let v = (s as i64 + step) % 5 + 1;
            let reply = backend.solve(r, lits(&[v])).unwrap().unwrap();
            let expect = mirror.solve(l, &lits(&[v])).unwrap();
            assert_eq!(reply.result, expect.result, "session {s} verdict split");
            assert_eq!(reply.model, expect.model, "session {s} witness split");
            r = reply.problem;
            l = expect.problem;
        }
    }

    // Long enough for many 50ms-interval heartbeat rounds to land on
    // whichever reactor owns each peer connection.
    std::thread::sleep(Duration::from_millis(400));
    for n in 0..3u16 {
        let server = cluster.server(n).expect("node is running");
        assert_eq!(server.reactors(), 2, "node {n} runs two reactors");
        assert_eq!(
            server.heartbeat_miss_handle().load(Ordering::Relaxed),
            0,
            "node {n} missed heartbeats under multi-reactor peering"
        );
        assert_eq!(server.epoch(), 0, "node {n} saw a spurious failure");
        let accepted: u64 = server.reactor_stats().iter().map(|s| s.accepted).sum();
        assert!(accepted >= 1, "node {n} accepted its peer connections");
    }
    backend.shutdown();
    cluster.shutdown();
}

/// A half-dead node answers every `Ping` (on both frame dialects) but
/// sits on everything else forever.
fn spawn_half_dead_node() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { return };
            std::thread::spawn(move || half_dead_connection(stream));
        }
    });
    addr
}

fn half_dead_connection(stream: TcpStream) {
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = std::io::BufWriter::new(stream);
    while let Ok(Some(frame)) = read_any_frame(&mut reader) {
        let Ok(request) = Request::decode(&frame.payload) else {
            return;
        };
        if let Request::Ping { epoch, .. } = request {
            let pong = Response::Pong { node: 0, epoch }.encode();
            let sent = match frame.tag {
                Some(tag) => write_tagged_frame(&mut writer, tag, &pong),
                None => write_frame(&mut writer, &pong),
            };
            if sent.is_err() {
                return;
            }
        }
        // Anything else: swallow it and say nothing, forever.
    }
}

/// The heartbeat blind spot (satellite): a node whose reactor still
/// answers pings but whose solves never complete looks healthy to the
/// failure detector — liveness there must come from the per-request
/// read deadline instead. The client times out, fails the node over,
/// and the heartbeat counters stay clean (zero heartbeat-attributed
/// failovers: this rescue belongs to the request path).
#[test]
fn a_half_dead_node_fails_over_via_the_request_deadline() {
    let addr = spawn_half_dead_node();
    let backend = ClusterBackend::connect(&[(0u16, addr)]).unwrap();
    backend
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();
    backend.start_heartbeat(Duration::from_millis(50), 2);

    // Long enough for several heartbeat rounds: the pings are answered,
    // so suspicion never accumulates and the node stays a member.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        backend.heartbeat_failovers(),
        0,
        "answered pings must not trip the detector"
    );
    assert_eq!(backend.num_nodes(), 1, "the half-dead node looks alive");

    // A real request hits the stall and the deadline converts it into a
    // fast, typed failover.
    let started = Instant::now();
    let err = backend.session_root(5).unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "bounded clients do not hang: took {:?}",
        started.elapsed()
    );
    assert!(
        matches!(
            err.kind(),
            ErrorKind::NotConnected | ErrorKind::TimedOut | ErrorKind::WouldBlock
        ),
        "unexpected error: {err}"
    );
    assert_eq!(backend.num_nodes(), 0, "the stalled node was failed over");
    assert_eq!(
        backend.heartbeat_failovers(),
        0,
        "the rescue came from the request deadline, not the heartbeat"
    );
}
