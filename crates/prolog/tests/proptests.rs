//! Property tests: the Prolog machine against host-computed oracles.

use lwsnap_prolog::Machine;
use proptest::prelude::*;

fn list_term(items: &[i64]) -> String {
    format!(
        "[{}]",
        items
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(",")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// append/3 concatenates exactly like the host.
    #[test]
    fn append_concatenates(
        a in proptest::collection::vec(-50i64..50, 0..6),
        b in proptest::collection::vec(-50i64..50, 0..6),
    ) {
        let mut m = Machine::new();
        let q = format!("append({}, {}, X)", list_term(&a), list_term(&b));
        let out = m.query(&q, None).unwrap();
        prop_assert_eq!(out.solutions.len(), 1);
        let mut joined = a.clone();
        joined.extend(&b);
        prop_assert_eq!(&out.solutions[0]["X"], &list_term(&joined));
    }

    /// append(X, Y, L) enumerates exactly len(L)+1 decompositions, and
    /// each one re-concatenates to L.
    #[test]
    fn append_decomposes(l in proptest::collection::vec(0i64..10, 0..7)) {
        let mut m = Machine::new();
        let out = m.query(&format!("append(X, Y, {})", list_term(&l)), None).unwrap();
        prop_assert_eq!(out.solutions.len(), l.len() + 1);
        for sol in &out.solutions {
            // X ++ Y == L rendered: strip brackets and splice.
            let strip = |s: &str| {
                s.trim_start_matches('[').trim_end_matches(']').to_owned()
            };
            let (x, y) = (strip(&sol["X"]), strip(&sol["Y"]));
            let spliced = match (x.is_empty(), y.is_empty()) {
                (true, _) => y.clone(),
                (_, true) => x.clone(),
                _ => format!("{x},{y}"),
            };
            prop_assert_eq!(format!("[{spliced}]"), list_term(&l));
        }
    }

    /// member/2 finds each element; non-members fail.
    #[test]
    fn member_matches_contains(
        l in proptest::collection::vec(0i64..20, 1..8),
        probe in 0i64..20,
    ) {
        let mut m = Machine::new();
        let out = m.query(&format!("member({probe}, {})", list_term(&l)), None).unwrap();
        let expected = l.iter().filter(|&&x| x == probe).count();
        prop_assert_eq!(out.solutions.len(), expected, "multiset semantics");
    }

    /// Arithmetic `is/2` matches host arithmetic on random expressions.
    #[test]
    fn is_matches_host(a in -1000i64..1000, b in -1000i64..1000, c in 1i64..50) {
        let mut m = Machine::new();
        let q = format!("X is ({a} + {b}) * 2 - {a} // {c} + {b} mod {c}");
        let out = m.query(&q, None).unwrap();
        let expected = (a + b) * 2 - a.wrapping_div(c) + a_mod(b, c);
        prop_assert_eq!(&out.solutions[0]["X"], &expected.to_string());
    }

    /// gen/3 produces exactly the host range.
    #[test]
    fn gen_matches_range(lo in -20i64..20, span in 0i64..15) {
        let hi = lo + span - 1; // may be < lo: empty range
        let mut m = Machine::new();
        let out = m.query(&format!("gen({lo}, {hi}, L)"), None).unwrap();
        let expected: Vec<i64> = (lo..=hi).collect();
        prop_assert_eq!(&out.solutions[0]["L"], &list_term(&expected));
    }

    /// Unification is symmetric: `T1 = T2` succeeds iff `T2 = T1` does.
    #[test]
    fn unification_symmetric(
        a in proptest::collection::vec(0i64..5, 0..4),
        b in proptest::collection::vec(0i64..5, 0..4),
    ) {
        let mut m = Machine::new();
        let fwd = m.query(&format!("{} = {}", list_term(&a), list_term(&b)), None).unwrap();
        let bwd = m.query(&format!("{} = {}", list_term(&b), list_term(&a)), None).unwrap();
        prop_assert_eq!(fwd.solutions.len(), bwd.solutions.len());
        prop_assert_eq!(fwd.solutions.len() == 1, a == b);
    }
}

/// `mod` in the machine is `rem_euclid`.
fn a_mod(x: i64, m: i64) -> i64 {
    x.rem_euclid(m)
}
