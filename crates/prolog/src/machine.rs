//! The resolution engine: SLD resolution with choice points, trail-based
//! backtracking, cut, and arithmetic builtins.
//!
//! This is the baseline of paper §5: "our prototype performs (as
//! expected) substantially worse than a hand-coded implementation, but
//! better than a Prolog implementation running on XSB". The engine here
//! is a classic structure-sharing interpreter — choice-point stack,
//! binding trail, clause renaming on every call — i.e. exactly the
//! bookkeeping machinery that system-level backtracking makes
//! unnecessary.

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use crate::parse::{parse_program, parse_query, PClause, PTerm, ParseError};
use crate::term::{AtomId, Atoms, Cell, Mark, Store, TermRef};

/// Engine errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlError {
    /// Reader error.
    Parse(ParseError),
    /// A goal was not callable (e.g. an integer goal).
    NotCallable {
        /// Rendered offending term.
        term: String,
    },
}

impl From<ParseError> for PlError {
    fn from(e: ParseError) -> Self {
        PlError::Parse(e)
    }
}

impl std::fmt::Display for PlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlError::Parse(e) => write!(f, "{e}"),
            PlError::NotCallable { term } => write!(f, "goal not callable: {term}"),
        }
    }
}

impl std::error::Error for PlError {}

/// A compiled clause: head/body roots inside a private cell store.
#[derive(Debug)]
struct Clause {
    store: Store,
    head: TermRef,
    body: Vec<TermRef>,
}

/// Engine counters: the cost of trail-based backtracking, measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlStats {
    /// Head unifications attempted (logical inferences).
    pub inferences: u64,
    /// Choice points created.
    pub choicepoints: u64,
    /// Backtracks (choice points resumed).
    pub backtracks: u64,
    /// Solutions found.
    pub solutions: u64,
}

/// Result of a query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// One map of variable name → rendered term per solution.
    pub solutions: Vec<BTreeMap<String, String>>,
    /// Engine counters for this query.
    pub stats: PlStats,
    /// Text produced by `write/1` and `nl/0`.
    pub output: String,
}

type Goals = Option<Rc<GoalNode>>;

struct GoalNode {
    term: TermRef,
    /// Choice-point stack height at clause entry; `!` truncates to here.
    cut_barrier: usize,
    next: Goals,
}

fn push_goal(goals: &Goals, term: TermRef, cut_barrier: usize) -> Goals {
    Some(Rc::new(GoalNode {
        term,
        cut_barrier,
        next: goals.clone(),
    }))
}

struct ChoicePoint {
    goal: TermRef,
    key: (AtomId, usize),
    next_clause: usize,
    continuation: Goals,
    mark: Mark,
}

/// Pre-interned builtin atoms.
struct Builtins {
    b_true: AtomId,
    b_fail: AtomId,
    b_cut: AtomId,
    b_unify: AtomId,
    b_nunify: AtomId,
    b_is: AtomId,
    b_eq: AtomId,
    b_neq: AtomId,
    b_lt: AtomId,
    b_gt: AtomId,
    b_le: AtomId,
    b_ge: AtomId,
    b_write: AtomId,
    b_nl: AtomId,
    b_plus: AtomId,
    b_minus: AtomId,
    b_star: AtomId,
    b_idiv: AtomId,
    b_mod: AtomId,
}

impl Builtins {
    fn new(atoms: &mut Atoms) -> Self {
        Builtins {
            b_true: atoms.intern("true"),
            b_fail: atoms.intern("fail"),
            b_cut: atoms.intern("!"),
            b_unify: atoms.intern("="),
            b_nunify: atoms.intern("\\="),
            b_is: atoms.intern("is"),
            b_eq: atoms.intern("=:="),
            b_neq: atoms.intern("=\\="),
            b_lt: atoms.intern("<"),
            b_gt: atoms.intern(">"),
            b_le: atoms.intern("=<"),
            b_ge: atoms.intern(">="),
            b_write: atoms.intern("write"),
            b_nl: atoms.intern("nl"),
            b_plus: atoms.intern("+"),
            b_minus: atoms.intern("-"),
            b_star: atoms.intern("*"),
            b_idiv: atoms.intern("//"),
            b_mod: atoms.intern("mod"),
        }
    }
}

/// Library predicates every program can rely on.
pub const PRELUDE: &str = r#"
select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
gen(L, H, []) :- L > H.
gen(L, H, [L|T]) :- L =< H, L1 is L + 1, gen(L1, H, T).
length([], 0).
length([_|T], N) :- length(T, M), N is M + 1.
"#;

/// The classic n-queens program used by the E1 ranking experiment.
pub const NQUEENS_PROGRAM: &str = r#"
queens(N, Qs) :- gen(1, N, Ns), place(Ns, [], Qs).
place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    select(Q, Unplaced, Rest),
    safe(Q, 1, Safe),
    place(Rest, [Q|Safe], Qs).
safe(_, _, []).
safe(Q, D, [P|Ps]) :- Q =\= P + D, Q =\= P - D, D1 is D + 1, safe(Q, D1, Ps).
"#;

/// A Prolog interpreter instance: database + runtime.
pub struct Machine {
    atoms: Atoms,
    builtins: Builtins,
    db: HashMap<(AtomId, usize), Vec<Rc<Clause>>>,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates a machine with the [`PRELUDE`] loaded.
    pub fn new() -> Self {
        let mut atoms = Atoms::new();
        let builtins = Builtins::new(&mut atoms);
        let mut m = Machine {
            atoms,
            builtins,
            db: HashMap::new(),
        };
        m.consult(PRELUDE).expect("prelude parses");
        m
    }

    /// Loads program text into the database.
    pub fn consult(&mut self, source: &str) -> Result<(), PlError> {
        for pclause in parse_program(source)? {
            self.add_clause(&pclause)?;
        }
        Ok(())
    }

    fn add_clause(&mut self, pclause: &PClause) -> Result<(), PlError> {
        let mut store = Store::new();
        let mut vars: HashMap<String, TermRef> = HashMap::new();
        let head = self.compile(&pclause.head, &mut store, &mut vars);
        let body: Vec<TermRef> = pclause
            .body
            .iter()
            .map(|g| self.compile(g, &mut store, &mut vars))
            .collect();
        let key = self
            .functor_of(&store, head)
            .ok_or_else(|| PlError::NotCallable {
                term: store.render(head, &self.atoms),
            })?;
        let clause = Rc::new(Clause { store, head, body });
        self.db.entry(key).or_default().push(clause);
        Ok(())
    }

    fn compile(
        &mut self,
        t: &PTerm,
        store: &mut Store,
        vars: &mut HashMap<String, TermRef>,
    ) -> TermRef {
        match t {
            PTerm::Int(v) => store.int(*v),
            PTerm::Atom(name) => {
                let id = self.atoms.intern(name);
                store.atom(id)
            }
            PTerm::Var(name) => {
                if name == "_" {
                    store.new_var()
                } else {
                    *vars.entry(name.clone()).or_insert_with(|| store.new_var())
                }
            }
            PTerm::Struct(f, args) => {
                let id = self.atoms.intern(f);
                let arg_refs: Vec<TermRef> =
                    args.iter().map(|a| self.compile(a, store, vars)).collect();
                store.structure(id, &arg_refs)
            }
        }
    }

    fn functor_of(&self, store: &Store, r: TermRef) -> Option<(AtomId, usize)> {
        match store.cell(store.deref(r)) {
            Cell::Atom(a) => Some((a, 0)),
            Cell::Struct(f, n) => Some((f, n)),
            _ => None,
        }
    }

    /// Runs a query, returning up to `limit` solutions (all if `None`).
    pub fn query(&mut self, text: &str, limit: Option<usize>) -> Result<QueryOutcome, PlError> {
        let goals_src = parse_query(text)?;
        let mut store = Store::new();
        let mut vars: HashMap<String, TermRef> = HashMap::new();
        let compiled: Vec<TermRef> = goals_src
            .iter()
            .map(|g| self.compile(g, &mut store, &mut vars))
            .collect();
        let mut goals: Goals = None;
        for &g in compiled.iter().rev() {
            goals = push_goal(&goals, g, 0);
        }
        let mut run = Run {
            machine: self,
            store,
            cps: Vec::new(),
            stats: PlStats::default(),
            output: String::new(),
        };
        let solutions = run.solve(goals, &vars, limit)?;
        let mut stats = run.stats;
        stats.solutions = solutions.len() as u64;
        Ok(QueryOutcome {
            solutions,
            stats,
            output: run.output,
        })
    }

    /// Convenience: count the solutions of a query.
    pub fn count_solutions(&mut self, text: &str) -> Result<u64, PlError> {
        Ok(self.query(text, None)?.stats.solutions)
    }
}

/// One in-flight query execution.
struct Run<'m> {
    machine: &'m mut Machine,
    store: Store,
    cps: Vec<ChoicePoint>,
    stats: PlStats,
    output: String,
}

enum Dispatch {
    /// Goal succeeded deterministically; `goals` already updated.
    Continue(Goals),
    /// Goal failed; backtrack.
    Fail,
}

impl Run<'_> {
    fn solve(
        &mut self,
        mut goals: Goals,
        vars: &HashMap<String, TermRef>,
        limit: Option<usize>,
    ) -> Result<Vec<BTreeMap<String, String>>, PlError> {
        let mut solutions = Vec::new();
        loop {
            match goals.clone() {
                None => {
                    // All goals solved: a solution.
                    let mut binding = BTreeMap::new();
                    for (name, &r) in vars {
                        if name != "_" {
                            binding.insert(name.clone(), self.store.render(r, &self.machine.atoms));
                        }
                    }
                    solutions.push(binding);
                    if let Some(max) = limit {
                        if solutions.len() >= max {
                            return Ok(solutions);
                        }
                    }
                    match self.backtrack()? {
                        Some(resumed) => goals = resumed,
                        None => return Ok(solutions),
                    }
                }
                Some(node) => {
                    goals = match self.dispatch(node.term, node.cut_barrier, &node.next)? {
                        Dispatch::Continue(next) => next,
                        Dispatch::Fail => match self.backtrack()? {
                            Some(resumed) => resumed,
                            None => return Ok(solutions),
                        },
                    };
                }
            }
        }
    }

    fn dispatch(
        &mut self,
        goal: TermRef,
        barrier: usize,
        continuation: &Goals,
    ) -> Result<Dispatch, PlError> {
        let goal = self.store.deref(goal);
        let b = &self.machine.builtins;
        let (f, n) = match self.store.cell(goal) {
            Cell::Atom(a) => (a, 0),
            Cell::Struct(f, n) => (f, n),
            _ => {
                return Err(PlError::NotCallable {
                    term: self.store.render(goal, &self.machine.atoms),
                })
            }
        };
        // Builtins.
        if n == 0 {
            if f == b.b_true {
                return Ok(Dispatch::Continue(continuation.clone()));
            }
            if f == b.b_fail {
                return Ok(Dispatch::Fail);
            }
            if f == b.b_cut {
                self.cps.truncate(barrier);
                return Ok(Dispatch::Continue(continuation.clone()));
            }
            if f == b.b_nl {
                self.output.push('\n');
                return Ok(Dispatch::Continue(continuation.clone()));
            }
        }
        if n == 1 && f == b.b_write {
            let text = self.store.render(goal + 1, &self.machine.atoms);
            self.output.push_str(&text);
            return Ok(Dispatch::Continue(continuation.clone()));
        }
        if n == 2 {
            if f == b.b_unify {
                return Ok(if self.store.unify(goal + 1, goal + 2) {
                    Dispatch::Continue(continuation.clone())
                } else {
                    Dispatch::Fail
                });
            }
            if f == b.b_nunify {
                let mark = self.store.mark();
                let unifiable = self.store.unify(goal + 1, goal + 2);
                self.store.undo_to(mark);
                return Ok(if unifiable {
                    Dispatch::Fail
                } else {
                    Dispatch::Continue(continuation.clone())
                });
            }
            if f == b.b_is {
                return Ok(match self.eval(goal + 2) {
                    Some(v) => {
                        let cell = self.store.int(v);
                        if self.store.unify(goal + 1, cell) {
                            Dispatch::Continue(continuation.clone())
                        } else {
                            Dispatch::Fail
                        }
                    }
                    None => Dispatch::Fail,
                });
            }
            if f == b.b_eq
                || f == b.b_neq
                || f == b.b_lt
                || f == b.b_gt
                || f == b.b_le
                || f == b.b_ge
            {
                let (x, y) = match (self.eval(goal + 1), self.eval(goal + 2)) {
                    (Some(x), Some(y)) => (x, y),
                    _ => return Ok(Dispatch::Fail),
                };
                let holds = if f == b.b_eq {
                    x == y
                } else if f == b.b_neq {
                    x != y
                } else if f == b.b_lt {
                    x < y
                } else if f == b.b_gt {
                    x > y
                } else if f == b.b_le {
                    x <= y
                } else {
                    x >= y
                };
                return Ok(if holds {
                    Dispatch::Continue(continuation.clone())
                } else {
                    Dispatch::Fail
                });
            }
        }
        // User predicate.
        self.try_call(goal, (f, n), 0, continuation.clone())
    }

    /// Tries clauses of `key` for `goal` starting at `from`; on success
    /// pushes body goals and (if alternatives remain) a choice point.
    fn try_call(
        &mut self,
        goal: TermRef,
        key: (AtomId, usize),
        from: usize,
        continuation: Goals,
    ) -> Result<Dispatch, PlError> {
        let mut idx = from;
        loop {
            let clause = match self.machine.db.get(&key).and_then(|v| v.get(idx)) {
                Some(c) => c.clone(),
                None => return Ok(Dispatch::Fail),
            };
            let mark = self.store.mark();
            let off = self.store.import(&clause.store);
            self.stats.inferences += 1;
            if self.store.unify(clause.head + off, goal) {
                let has_more = self
                    .machine
                    .db
                    .get(&key)
                    .map(|v| v.len() > idx + 1)
                    .unwrap_or(false);
                let barrier = self.cps.len();
                if has_more {
                    self.cps.push(ChoicePoint {
                        goal,
                        key,
                        next_clause: idx + 1,
                        continuation: continuation.clone(),
                        mark,
                    });
                    self.stats.choicepoints += 1;
                }
                let mut goals = continuation;
                for &g in clause.body.iter().rev() {
                    goals = push_goal(&goals, g + off, barrier);
                }
                return Ok(Dispatch::Continue(goals));
            }
            self.store.undo_to(mark);
            idx += 1;
        }
    }

    /// Pops choice points until one yields a new execution state.
    fn backtrack(&mut self) -> Result<Option<Goals>, PlError> {
        while let Some(cp) = self.cps.pop() {
            self.stats.backtracks += 1;
            self.store.undo_to(cp.mark);
            match self.try_call(cp.goal, cp.key, cp.next_clause, cp.continuation)? {
                Dispatch::Continue(goals) => return Ok(Some(goals)),
                Dispatch::Fail => continue,
            }
        }
        Ok(None)
    }

    /// Arithmetic evaluation; `None` on type errors (the goal then fails).
    fn eval(&self, r: TermRef) -> Option<i64> {
        let b = &self.machine.builtins;
        let r = self.store.deref(r);
        match self.store.cell(r) {
            Cell::Int(v) => Some(v),
            Cell::Struct(f, 2) => {
                let x = self.eval(r + 1)?;
                let y = self.eval(r + 2)?;
                if f == b.b_plus {
                    Some(x.wrapping_add(y))
                } else if f == b.b_minus {
                    Some(x.wrapping_sub(y))
                } else if f == b.b_star {
                    Some(x.wrapping_mul(y))
                } else if f == b.b_idiv {
                    (y != 0).then(|| x.wrapping_div(y))
                } else if f == b.b_mod {
                    (y != 0).then(|| x.rem_euclid(y))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_with(src: &str) -> Machine {
        let mut m = Machine::new();
        m.consult(src).unwrap();
        m
    }

    #[test]
    fn facts_and_simple_query() {
        let mut m = machine_with("parent(tom, bob). parent(bob, ann).");
        let out = m.query("parent(tom, X)", None).unwrap();
        assert_eq!(out.solutions.len(), 1);
        assert_eq!(out.solutions[0]["X"], "bob");
    }

    #[test]
    fn rules_and_joins() {
        let mut m = machine_with(
            "parent(tom, bob). parent(bob, ann). parent(bob, joe).
             grand(X, Z) :- parent(X, Y), parent(Y, Z).",
        );
        let out = m.query("grand(tom, Z)", None).unwrap();
        let names: Vec<&str> = out.solutions.iter().map(|s| s["Z"].as_str()).collect();
        assert_eq!(names, vec!["ann", "joe"]);
        assert!(
            out.stats.backtracks > 0,
            "enumeration requires backtracking"
        );
    }

    #[test]
    fn unification_and_lists() {
        let mut m = Machine::new();
        let out = m.query("X = [1, 2, 3]", None).unwrap();
        assert_eq!(out.solutions[0]["X"], "[1,2,3]");
        let out = m.query("[H|T] = [a, b, c]", None).unwrap();
        assert_eq!(out.solutions[0]["H"], "a");
        assert_eq!(out.solutions[0]["T"], "[b,c]");
        let out = m.query("f(X, 2) = f(1, Y)", None).unwrap();
        assert_eq!(out.solutions[0]["X"], "1");
        assert_eq!(out.solutions[0]["Y"], "2");
        assert!(m.query("a = b", None).unwrap().solutions.is_empty());
    }

    #[test]
    fn arithmetic() {
        let mut m = Machine::new();
        assert_eq!(
            m.query("X is 2 + 3 * 4", None).unwrap().solutions[0]["X"],
            "14"
        );
        assert_eq!(
            m.query("X is 10 // 3", None).unwrap().solutions[0]["X"],
            "3"
        );
        assert_eq!(
            m.query("X is 10 mod 3", None).unwrap().solutions[0]["X"],
            "1"
        );
        assert_eq!(
            m.query("X is -5 + 2", None).unwrap().solutions[0]["X"],
            "-3"
        );
        assert!(
            m.query("X is 1 // 0", None).unwrap().solutions.is_empty(),
            "div zero fails"
        );
        assert_eq!(
            m.query("3 < 5, 5 >= 5, 4 =< 9, 2 =:= 2, 3 =\\= 4", None)
                .unwrap()
                .solutions
                .len(),
            1
        );
        assert!(m.query("5 < 3", None).unwrap().solutions.is_empty());
    }

    #[test]
    fn prelude_predicates() {
        let mut m = Machine::new();
        // member enumerates.
        let out = m.query("member(X, [a, b, c])", None).unwrap();
        assert_eq!(out.solutions.len(), 3);
        // append splits: 4 decompositions of a 3-list.
        let out = m.query("append(X, Y, [1, 2, 3])", None).unwrap();
        assert_eq!(out.solutions.len(), 4);
        // select removes one element.
        let out = m.query("select(X, [1, 2, 3], R)", None).unwrap();
        assert_eq!(out.solutions.len(), 3);
        assert_eq!(out.solutions[0]["R"], "[2,3]");
        // gen builds ranges.
        let out = m.query("gen(1, 4, L)", None).unwrap();
        assert_eq!(out.solutions[0]["L"], "[1,2,3,4]");
        // length.
        let out = m.query("length([a, b], N)", None).unwrap();
        assert_eq!(out.solutions[0]["N"], "2");
    }

    #[test]
    fn cut_prunes_alternatives() {
        let mut m = machine_with(
            "first(X, [X|_]) :- !.
             first(X, [_|T]) :- first(X, T).
             max(X, Y, X) :- X >= Y, !.
             max(_, Y, Y).",
        );
        let out = m.query("first(X, [1, 2, 3])", None).unwrap();
        assert_eq!(out.solutions.len(), 1, "cut stops enumeration");
        assert_eq!(
            m.query("max(3, 5, M)", None).unwrap().solutions[0]["M"],
            "5"
        );
        assert_eq!(m.query("max(7, 5, M)", None).unwrap().solutions.len(), 1);
        assert_eq!(
            m.query("max(7, 5, M)", None).unwrap().solutions[0]["M"],
            "7"
        );
    }

    #[test]
    fn negation_by_nunify() {
        let mut m = Machine::new();
        assert_eq!(m.query("a \\= b", None).unwrap().solutions.len(), 1);
        assert!(m.query("a \\= a", None).unwrap().solutions.is_empty());
        // \= must not leave bindings behind.
        let out = m.query("X = 1, f(X) \\= f(2)", None).unwrap();
        assert_eq!(out.solutions[0]["X"], "1");
    }

    #[test]
    fn write_output() {
        let mut m = Machine::new();
        let out = m
            .query("write(hello), nl, X = [1,2], write(X)", None)
            .unwrap();
        assert_eq!(out.output, "hello\n[1,2]");
    }

    #[test]
    fn solution_limit() {
        let mut m = Machine::new();
        let out = m.query("member(X, [1,2,3,4,5])", Some(2)).unwrap();
        assert_eq!(out.solutions.len(), 2);
    }

    #[test]
    fn recursion_peano_style() {
        let mut m = machine_with(
            "fib(0, 0). fib(1, 1).
             fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                          fib(A, FA), fib(B, FB), F is FA + FB.",
        );
        let out = m.query("fib(15, F)", None).unwrap();
        assert_eq!(out.solutions[0]["F"], "610");
    }

    #[test]
    fn nqueens_prolog_counts() {
        let mut m = machine_with(NQUEENS_PROGRAM);
        assert_eq!(m.count_solutions("queens(4, Qs)").unwrap(), 2);
        assert_eq!(m.count_solutions("queens(6, Qs)").unwrap(), 4);
    }

    #[test]
    fn nqueens_8_matches_oeis() {
        let mut m = machine_with(NQUEENS_PROGRAM);
        let out = m.query("queens(8, Qs)", None).unwrap();
        assert_eq!(out.solutions.len(), 92);
        assert!(out.stats.backtracks > 1000, "real search happened");
    }

    #[test]
    fn unknown_predicate_fails() {
        let mut m = Machine::new();
        assert!(m
            .query("no_such_pred(1)", None)
            .unwrap()
            .solutions
            .is_empty());
    }

    #[test]
    fn not_callable_goal_errors() {
        let mut m = Machine::new();
        let err = m.query("X = 3, X", None).unwrap_err();
        assert!(matches!(err, PlError::NotCallable { .. }));
    }

    #[test]
    fn anonymous_vars_not_reported() {
        let mut m = Machine::new();
        let out = m.query("_ = 1, X = 2", None).unwrap();
        assert_eq!(out.solutions[0].len(), 1);
        assert_eq!(out.solutions[0]["X"], "2");
    }
}
