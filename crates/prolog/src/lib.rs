//! # lwsnap-prolog — the language-runtime backtracking baseline
//!
//! The paper positions system-level backtracking against language
//! runtimes: its prototype runs n-queens "better than a Prolog
//! implementation running on XSB" (§5). This crate is that comparison
//! point: a WAM-inspired Prolog interpreter with the classic machinery —
//! structure sharing, clause renaming, a choice-point stack, and a
//! binding **trail** that is unwound on every backtrack.
//!
//! The contrast matters: here, backtracking cost is *per binding undone*;
//! with lightweight snapshots it is *per page CoW-copied*. Experiment E1
//! measures both on the same problem.
//!
//! ```
//! use lwsnap_prolog::{Machine, NQUEENS_PROGRAM};
//!
//! let mut m = Machine::new();            // prelude preloaded
//! m.consult(NQUEENS_PROGRAM).unwrap();
//! assert_eq!(m.count_solutions("queens(6, Qs)").unwrap(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod parse;
pub mod term;

pub use machine::{Machine, PlError, PlStats, QueryOutcome, NQUEENS_PROGRAM, PRELUDE};
pub use parse::{parse_program, parse_query, PClause, PTerm, ParseError};
pub use term::{AtomId, Atoms, Cell, Store, TermRef};
