//! Term store: WAM-style cells, bindings, trail, and unification.
//!
//! The interpreter's backtracking works the way the paper says hand-coded
//! and language-runtime backtracking works — and what its snapshots
//! replace: every variable binding is recorded on a **trail**, and
//! backtracking *undoes* bindings one by one. Contrast with lwsnap-core,
//! where backtracking restores an immutable snapshot and nothing is ever
//! undone.

use std::collections::HashMap;

/// Interned atom identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AtomId(pub u32);

/// Atom interner.
#[derive(Debug, Default, Clone)]
pub struct Atoms {
    names: Vec<String>,
    index: HashMap<String, AtomId>,
}

impl Atoms {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Atoms::default()
    }

    /// Interns `name`.
    pub fn intern(&mut self, name: &str) -> AtomId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = AtomId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// The name of an atom.
    pub fn name(&self, id: AtomId) -> &str {
        &self.names[id.0 as usize]
    }
}

/// Index of a cell in the store.
pub type TermRef = usize;

/// One heap cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// An unbound variable.
    Free,
    /// A bound variable (points at its value).
    Ref(TermRef),
    /// An atom.
    Atom(AtomId),
    /// An integer.
    Int(i64),
    /// A structure header `f/arity`; the args are the following `arity`
    /// cells (flat WAM layout).
    Struct(AtomId, usize),
}

/// The term heap with trail-based undo.
#[derive(Debug, Default, Clone)]
pub struct Store {
    cells: Vec<Cell>,
    trail: Vec<TermRef>,
}

/// A saved store position for backtracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    cells: usize,
    trail: usize,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Number of live cells (diagnostics).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads a cell.
    #[inline]
    pub fn cell(&self, r: TermRef) -> Cell {
        self.cells[r]
    }

    /// Pushes a fresh unbound variable.
    pub fn new_var(&mut self) -> TermRef {
        self.cells.push(Cell::Free);
        self.cells.len() - 1
    }

    /// Pushes an atom cell.
    pub fn atom(&mut self, id: AtomId) -> TermRef {
        self.cells.push(Cell::Atom(id));
        self.cells.len() - 1
    }

    /// Pushes an integer cell.
    pub fn int(&mut self, v: i64) -> TermRef {
        self.cells.push(Cell::Int(v));
        self.cells.len() - 1
    }

    /// Pushes a structure: header followed by arg cells referencing
    /// `args`. Returns the header ref.
    pub fn structure(&mut self, f: AtomId, args: &[TermRef]) -> TermRef {
        let header = self.cells.len();
        self.cells.push(Cell::Struct(f, args.len()));
        for &a in args {
            self.cells.push(Cell::Ref(a));
        }
        header
    }

    /// Appends every cell of `other`, shifting internal references.
    ///
    /// Returns the offset to add to `other`-relative refs. This is how a
    /// program clause (compiled into its own store) is "renamed apart"
    /// into the runtime heap: `Free` cells become fresh variables.
    pub fn import(&mut self, other: &Store) -> usize {
        let off = self.cells.len();
        self.cells
            .extend(other.cells.iter().map(|&cell| match cell {
                Cell::Ref(r) => Cell::Ref(r + off),
                c => c,
            }));
        off
    }

    /// Follows `Ref` chains to the representative cell.
    #[inline]
    pub fn deref(&self, mut r: TermRef) -> TermRef {
        loop {
            match self.cells[r] {
                Cell::Ref(next) => r = next,
                _ => return r,
            }
        }
    }

    /// Binds the unbound variable at `v` to `t`, recording it on the
    /// trail.
    pub fn bind(&mut self, v: TermRef, t: TermRef) {
        debug_assert_eq!(self.cells[v], Cell::Free, "bind target must be unbound");
        self.cells[v] = Cell::Ref(t);
        self.trail.push(v);
    }

    /// Captures the current store/trail position.
    pub fn mark(&self) -> Mark {
        Mark {
            cells: self.cells.len(),
            trail: self.trail.len(),
        }
    }

    /// Undoes all bindings and allocations made since `mark`.
    pub fn undo_to(&mut self, mark: Mark) {
        while self.trail.len() > mark.trail {
            let v = self.trail.pop().expect("trail entry");
            if v < mark.cells {
                self.cells[v] = Cell::Free;
            }
        }
        self.cells.truncate(mark.cells);
    }

    /// Unifies two terms; on failure the caller must undo to a prior
    /// mark (bindings made by the failed attempt remain trailed).
    pub fn unify(&mut self, a: TermRef, b: TermRef) -> bool {
        let mut stack = vec![(a, b)];
        while let Some((x, y)) = stack.pop() {
            let x = self.deref(x);
            let y = self.deref(y);
            if x == y {
                continue;
            }
            match (self.cells[x], self.cells[y]) {
                (Cell::Free, _) => self.bind(x, y),
                (_, Cell::Free) => self.bind(y, x),
                (Cell::Atom(p), Cell::Atom(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Cell::Int(p), Cell::Int(q)) => {
                    if p != q {
                        return false;
                    }
                }
                (Cell::Struct(f, n), Cell::Struct(g, m)) => {
                    if f != g || n != m {
                        return false;
                    }
                    for i in 0..n {
                        stack.push((x + 1 + i, y + 1 + i));
                    }
                }
                _ => return false,
            }
        }
        true
    }

    /// Renders a term for output (lists in bracket syntax).
    pub fn render(&self, r: TermRef, atoms: &Atoms) -> String {
        let r = self.deref(r);
        match self.cells[r] {
            Cell::Free => format!("_G{r}"),
            Cell::Ref(_) => unreachable!("deref'd"),
            Cell::Atom(a) => atoms.name(a).to_owned(),
            Cell::Int(v) => v.to_string(),
            Cell::Struct(f, n) => {
                // List sugar: '.'(H, T).
                if atoms.name(f) == "." && n == 2 {
                    return self.render_list(r, atoms);
                }
                let args: Vec<String> = (0..n).map(|i| self.render(r + 1 + i, atoms)).collect();
                format!("{}({})", atoms.name(f), args.join(","))
            }
        }
    }

    fn render_list(&self, mut r: TermRef, atoms: &Atoms) -> String {
        let mut parts = Vec::new();
        loop {
            r = self.deref(r);
            match self.cells[r] {
                Cell::Struct(f, 2) if atoms.name(f) == "." => {
                    parts.push(self.render(r + 1, atoms));
                    r += 2;
                }
                Cell::Atom(a) if atoms.name(a) == "[]" => {
                    return format!("[{}]", parts.join(","));
                }
                _ => {
                    return format!("[{}|{}]", parts.join(","), self.render(r, atoms));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Store, Atoms) {
        (Store::new(), Atoms::new())
    }

    #[test]
    fn intern_is_stable() {
        let mut atoms = Atoms::new();
        let a = atoms.intern("foo");
        let b = atoms.intern("foo");
        let c = atoms.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(atoms.name(a), "foo");
    }

    #[test]
    fn unify_atoms_and_ints() {
        let (mut s, mut atoms) = setup();
        let foo = atoms.intern("foo");
        let bar = atoms.intern("bar");
        let a1 = s.atom(foo);
        let a2 = s.atom(foo);
        let a3 = s.atom(bar);
        assert!(s.unify(a1, a2));
        assert!(!s.unify(a1, a3));
        let i1 = s.int(5);
        let i2 = s.int(5);
        let i3 = s.int(6);
        assert!(s.unify(i1, i2));
        assert!(!s.unify(i1, i3));
    }

    #[test]
    fn unify_binds_variables() {
        let (mut s, mut atoms) = setup();
        let foo = atoms.intern("foo");
        let v = s.new_var();
        let a = s.atom(foo);
        assert!(s.unify(v, a));
        assert_eq!(s.deref(v), a);
        // Unifying two free variables links them.
        let x = s.new_var();
        let y = s.new_var();
        assert!(s.unify(x, y));
        let c = s.int(9);
        assert!(s.unify(x, c));
        assert_eq!(s.cell(s.deref(y)), Cell::Int(9));
    }

    #[test]
    fn unify_structs_recursively() {
        let (mut s, mut atoms) = setup();
        let f = atoms.intern("f");
        let one = s.int(1);
        let v = s.new_var();
        let t1 = s.structure(f, &[one, v]);
        let two = s.int(2);
        let w = s.new_var();
        let t2 = s.structure(f, &[w, two]);
        assert!(s.unify(t1, t2));
        assert_eq!(s.cell(s.deref(v)), Cell::Int(2));
        assert_eq!(s.cell(s.deref(w)), Cell::Int(1));
    }

    #[test]
    fn unify_arity_mismatch_fails() {
        let (mut s, mut atoms) = setup();
        let f = atoms.intern("f");
        let one = s.int(1);
        let t1 = s.structure(f, &[one]);
        let a = s.int(1);
        let b = s.int(2);
        let t2 = s.structure(f, &[a, b]);
        assert!(!s.unify(t1, t2));
    }

    #[test]
    fn trail_undo_restores() {
        let (mut s, mut atoms) = setup();
        let foo = atoms.intern("foo");
        let v = s.new_var();
        let mark = s.mark();
        let a = s.atom(foo);
        assert!(s.unify(v, a));
        assert_ne!(s.cell(s.deref(v)), Cell::Free);
        s.undo_to(mark);
        assert_eq!(s.cell(v), Cell::Free);
        assert_eq!(s.len(), 1, "cells allocated after the mark are gone");
    }

    #[test]
    fn failed_unify_then_undo_is_clean() {
        let (mut s, mut atoms) = setup();
        let f = atoms.intern("f");
        // f(X, 1) vs f(2, 3): binds X:=2 then fails on 1 vs 3.
        let x = s.new_var();
        let one = s.int(1);
        let t1 = s.structure(f, &[x, one]);
        let mark = s.mark();
        let two = s.int(2);
        let three = s.int(3);
        let t2 = s.structure(f, &[two, three]);
        assert!(!s.unify(t1, t2));
        s.undo_to(mark);
        assert_eq!(s.cell(x), Cell::Free, "partial binding undone");
    }

    #[test]
    fn render_terms() {
        let (mut s, mut atoms) = setup();
        let f = atoms.intern("point");
        let x = s.int(3);
        let y = s.int(4);
        let t = s.structure(f, &[x, y]);
        assert_eq!(s.render(t, &atoms), "point(3,4)");
        let v = s.new_var();
        assert!(s.render(v, &atoms).starts_with("_G"));
    }

    #[test]
    fn render_lists() {
        let (mut s, mut atoms) = setup();
        let cons = atoms.intern(".");
        let nil = atoms.intern("[]");
        // [1,2]
        let nil_t = s.atom(nil);
        let two = s.int(2);
        let l2 = s.structure(cons, &[two, nil_t]);
        let one = s.int(1);
        let l1 = s.structure(cons, &[one, l2]);
        assert_eq!(s.render(l1, &atoms), "[1,2]");
        // Improper list [1|X].
        let v = s.new_var();
        let one = s.int(1);
        let improper = s.structure(cons, &[one, v]);
        assert!(s.render(improper, &atoms).starts_with("[1|_G"));
    }
}
