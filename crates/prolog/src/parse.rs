//! Prolog reader: tokenizer and operator-precedence parser.
//!
//! Supported subset (everything the baseline programs need):
//!
//! * facts and rules `head :- g1, g2, ... .`
//! * atoms, integers, variables, structures, lists `[a,b|T]`
//! * arithmetic/comparison operators with standard precedences:
//!   `=` `\=` `is` `=:=` `=\=` `<` `>` `=<` `>=` (700, xfx),
//!   `+` `-` (500, yfx), `*` `//` `mod` (400, yfx), unary `-`
//! * `!` (cut), `%` line comments

/// A parsed (source-level) term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PTerm {
    /// Atom, e.g. `foo`, `[]`, `!`.
    Atom(String),
    /// Variable, e.g. `X`, `_Rest`, `_`.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Structure, e.g. `f(X, 1)`; operators parse to structures too.
    Struct(String, Vec<PTerm>),
}

/// A clause: `head.` or `head :- body1, body2.`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PClause {
    /// The head term (atom or structure).
    pub head: PTerm,
    /// Body goals in order (empty for facts).
    pub body: Vec<PTerm>,
}

/// Parse error with position info.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source.
    pub at: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Atom(String),
    Var(String),
    Int(i64),
    Punct(&'static str), // ( ) [ ] | , . :- ! and operators
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

const OPERATORS: [&str; 13] = [
    "=:=", "=\\=", "=<", ">=", ":-", "\\=", "is", "mod", "//", "=", "<", ">", "+",
];

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next(&mut self) -> Result<Option<(usize, Tok)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return Ok(None);
        }
        let at = self.pos;
        let b = self.src[self.pos];
        // Multi-char operators first (longest match).
        for op in ["=:=", "=\\=", "=<", ">=", ":-", "\\=", "//"] {
            if self.src[self.pos..].starts_with(op.as_bytes()) {
                self.pos += op.len();
                return Ok(Some((at, Tok::Punct(leak(op)))));
            }
        }
        match b {
            b'(' | b')' | b'[' | b']' | b'|' | b',' | b'!' | b'=' | b'<' | b'>' | b'+' | b'-'
            | b'*' => {
                self.pos += 1;
                let s: &'static str = match b {
                    b'(' => "(",
                    b')' => ")",
                    b'[' => "[",
                    b']' => "]",
                    b'|' => "|",
                    b',' => ",",
                    b'!' => "!",
                    b'=' => "=",
                    b'<' => "<",
                    b'>' => ">",
                    b'+' => "+",
                    b'-' => "-",
                    _ => "*",
                };
                Ok(Some((at, Tok::Punct(s))))
            }
            b'.' => {
                // End-of-clause dot must be followed by whitespace/EOF.
                self.pos += 1;
                Ok(Some((at, Tok::Punct("."))))
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                let v = text.parse().map_err(|_| ParseError {
                    at,
                    msg: format!("bad integer `{text}`"),
                })?;
                Ok(Some((at, Tok::Int(v))))
            }
            b'a'..=b'z' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_owned();
                if text == "is" || text == "mod" {
                    return Ok(Some((at, Tok::Punct(leak(&text)))));
                }
                Ok(Some((at, Tok::Atom(text))))
            }
            b'A'..=b'Z' | b'_' => {
                let start = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .expect("ascii")
                    .to_owned();
                Ok(Some((at, Tok::Var(text))))
            }
            b'\'' => {
                // Quoted atom.
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(ParseError {
                        at,
                        msg: "unterminated quoted atom".into(),
                    });
                }
                let text = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| ParseError {
                        at,
                        msg: "non-UTF8 atom".into(),
                    })?
                    .to_owned();
                self.pos += 1;
                Ok(Some((at, Tok::Atom(text))))
            }
            other => Err(ParseError {
                at,
                msg: format!("unexpected byte `{}`", other as char),
            }),
        }
    }
}

/// Interns operator strings to 'static (bounded by the operator set).
fn leak(s: &str) -> &'static str {
    for op in OPERATORS {
        if op == s {
            return op;
        }
    }
    unreachable!("unknown operator {s}")
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(a, _)| *a)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(Tok::Punct(q)) if q == p => Ok(()),
            other => Err(ParseError {
                at: self.at(),
                msg: format!("expected `{p}`, found {other:?}"),
            }),
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.at(),
            msg: msg.into(),
        })
    }

    /// term(700): comparisons (non-associative).
    fn term(&mut self) -> Result<PTerm, ParseError> {
        let lhs = self.additive()?;
        if let Some(Tok::Punct(op)) = self.peek() {
            let op = *op;
            if matches!(
                op,
                "=" | "\\=" | "is" | "=:=" | "=\\=" | "<" | ">" | "=<" | ">="
            ) {
                self.bump();
                let rhs = self.additive()?;
                return Ok(PTerm::Struct(op.to_owned(), vec![lhs, rhs]));
            }
        }
        Ok(lhs)
    }

    /// term(500): + and -, left associative.
    fn additive(&mut self) -> Result<PTerm, ParseError> {
        let mut lhs = self.multiplicative()?;
        while let Some(Tok::Punct(op)) = self.peek() {
            let op = *op;
            if op == "+" || op == "-" {
                self.bump();
                let rhs = self.multiplicative()?;
                lhs = PTerm::Struct(op.to_owned(), vec![lhs, rhs]);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    /// term(400): * // mod, left associative.
    fn multiplicative(&mut self) -> Result<PTerm, ParseError> {
        let mut lhs = self.primary()?;
        while let Some(Tok::Punct(op)) = self.peek() {
            let op = *op;
            if op == "*" || op == "//" || op == "mod" {
                self.bump();
                let rhs = self.primary()?;
                lhs = PTerm::Struct(op.to_owned(), vec![lhs, rhs]);
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<PTerm, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(PTerm::Int(v)),
            Some(Tok::Var(name)) => Ok(PTerm::Var(name)),
            Some(Tok::Punct("-")) => {
                // Unary minus.
                match self.primary()? {
                    PTerm::Int(v) => Ok(PTerm::Int(-v)),
                    t => Ok(PTerm::Struct("-".into(), vec![PTerm::Int(0), t])),
                }
            }
            Some(Tok::Punct("(")) => {
                let t = self.term()?;
                self.expect_punct(")")?;
                Ok(t)
            }
            Some(Tok::Punct("[")) => self.list(),
            Some(Tok::Punct("!")) => Ok(PTerm::Atom("!".into())),
            Some(Tok::Atom(name)) => {
                if self.peek() == Some(&Tok::Punct("(")) {
                    self.bump();
                    let mut args = vec![self.term()?];
                    while self.peek() == Some(&Tok::Punct(",")) {
                        self.bump();
                        args.push(self.term()?);
                    }
                    self.expect_punct(")")?;
                    Ok(PTerm::Struct(name, args))
                } else {
                    Ok(PTerm::Atom(name))
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }

    fn list(&mut self) -> Result<PTerm, ParseError> {
        if self.peek() == Some(&Tok::Punct("]")) {
            self.bump();
            return Ok(PTerm::Atom("[]".into()));
        }
        let mut items = vec![self.term()?];
        while self.peek() == Some(&Tok::Punct(",")) {
            self.bump();
            items.push(self.term()?);
        }
        let tail = if self.peek() == Some(&Tok::Punct("|")) {
            self.bump();
            self.term()?
        } else {
            PTerm::Atom("[]".into())
        };
        self.expect_punct("]")?;
        let mut list = tail;
        for item in items.into_iter().rev() {
            list = PTerm::Struct(".".into(), vec![item, list]);
        }
        Ok(list)
    }

    /// Parses `head (:- body)? .`
    fn clause(&mut self) -> Result<PClause, ParseError> {
        let head = self.term()?;
        match &head {
            PTerm::Atom(_) | PTerm::Struct(_, _) => {}
            other => return self.err(format!("clause head must be callable, got {other:?}")),
        }
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::Punct(":-")) {
            self.bump();
            body.push(self.term()?);
            while self.peek() == Some(&Tok::Punct(",")) {
                self.bump();
                body.push(self.term()?);
            }
        }
        self.expect_punct(".")?;
        Ok(PClause { head, body })
    }
}

fn tokenize(source: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut lexer = Lexer::new(source);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next()? {
        toks.push(t);
    }
    Ok(toks)
}

/// Parses a whole program (sequence of clauses).
pub fn parse_program(source: &str) -> Result<Vec<PClause>, ParseError> {
    let mut p = Parser {
        toks: tokenize(source)?,
        pos: 0,
    };
    let mut clauses = Vec::new();
    while p.peek().is_some() {
        clauses.push(p.clause()?);
    }
    Ok(clauses)
}

/// Parses a query: a comma-separated goal list (no trailing dot needed).
pub fn parse_query(source: &str) -> Result<Vec<PTerm>, ParseError> {
    let source = source.trim().trim_end_matches('.');
    let mut p = Parser {
        toks: tokenize(source)?,
        pos: 0,
    };
    let mut goals = vec![p.term()?];
    while p.peek() == Some(&Tok::Punct(",")) {
        p.bump();
        goals.push(p.term()?);
    }
    if p.peek().is_some() {
        return p.err("trailing tokens after query");
    }
    Ok(goals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(s: &str) -> PTerm {
        PTerm::Atom(s.into())
    }

    fn var(s: &str) -> PTerm {
        PTerm::Var(s.into())
    }

    #[test]
    fn facts_and_rules() {
        let prog =
            parse_program("parent(tom, bob).\ngrand(X,Z) :- parent(X,Y), parent(Y,Z).").unwrap();
        assert_eq!(prog.len(), 2);
        assert_eq!(
            prog[0].head,
            PTerm::Struct("parent".into(), vec![atom("tom"), atom("bob")])
        );
        assert!(prog[0].body.is_empty());
        assert_eq!(prog[1].body.len(), 2);
    }

    #[test]
    fn operators_precedence() {
        let q = parse_query("X is 1 + 2 * 3").unwrap();
        assert_eq!(
            q[0],
            PTerm::Struct(
                "is".into(),
                vec![
                    var("X"),
                    PTerm::Struct(
                        "+".into(),
                        vec![
                            PTerm::Int(1),
                            PTerm::Struct("*".into(), vec![PTerm::Int(2), PTerm::Int(3)])
                        ]
                    )
                ]
            )
        );
        // Left associativity: 10 - 2 - 3 = (10-2)-3.
        let q = parse_query("X is 10 - 2 - 3").unwrap();
        if let PTerm::Struct(_, args) = &q[0] {
            assert_eq!(
                args[1],
                PTerm::Struct(
                    "-".into(),
                    vec![
                        PTerm::Struct("-".into(), vec![PTerm::Int(10), PTerm::Int(2)]),
                        PTerm::Int(3)
                    ]
                )
            );
        } else {
            panic!("not a struct");
        }
    }

    #[test]
    fn comparisons() {
        let q = parse_query("X =\\= Y + 1, X =< 4").unwrap();
        assert_eq!(q.len(), 2);
        assert!(matches!(&q[0], PTerm::Struct(op, _) if op == "=\\="));
        assert!(matches!(&q[1], PTerm::Struct(op, _) if op == "=<"));
    }

    #[test]
    fn lists() {
        let q = parse_query("X = [1, 2 | T]").unwrap();
        let expected = PTerm::Struct(
            ".".into(),
            vec![
                PTerm::Int(1),
                PTerm::Struct(".".into(), vec![PTerm::Int(2), var("T")]),
            ],
        );
        assert_eq!(q[0], PTerm::Struct("=".into(), vec![var("X"), expected]));
        let q = parse_query("X = []").unwrap();
        assert_eq!(q[0], PTerm::Struct("=".into(), vec![var("X"), atom("[]")]));
    }

    #[test]
    fn cut_and_negative_numbers() {
        let prog = parse_program("f(X) :- X > 0, !.\n").unwrap();
        assert_eq!(prog[0].body[1], atom("!"));
        let q = parse_query("X is -5 + 3").unwrap();
        assert!(matches!(&q[0], PTerm::Struct(op, _) if op == "is"));
    }

    #[test]
    fn comments_and_quoted_atoms() {
        let prog = parse_program("% a comment\nf('hello world'). % trailing\n").unwrap();
        assert_eq!(
            prog[0].head,
            PTerm::Struct("f".into(), vec![atom("hello world")])
        );
    }

    #[test]
    fn errors() {
        assert!(parse_program("f(X :- g.").is_err());
        assert!(parse_program("3 :- g.").is_err(), "integer head");
        assert!(parse_program("f('unterminated).").is_err());
        assert!(parse_query("f(X), ,").is_err());
    }

    #[test]
    fn underscore_vars() {
        let q = parse_query("f(_, _Rest)").unwrap();
        assert_eq!(
            q[0],
            PTerm::Struct("f".into(), vec![var("_"), var("_Rest")])
        );
    }
}
