//! Error types for the software virtual-memory subsystem.
//!
//! Two distinct failure families exist, mirroring a real kernel:
//!
//! * [`Fault`] — a *guest-visible* memory fault raised while an execution
//!   step accesses memory (the analogue of a page-fault that cannot be
//!   resolved, e.g. a protection violation). The backtracking engine
//!   typically turns these into a failed extension step.
//! * [`MemError`] — an *API usage* error raised by address-space management
//!   calls (`map`, `unmap`, `protect`, `brk`), the analogue of an `errno`
//!   returned by `mmap(2)` and friends.

use core::fmt;

use crate::region::Access;

/// A guest-visible memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The address is not covered by any mapped region.
    Unmapped {
        /// Faulting guest-virtual address.
        va: u64,
    },
    /// The address is mapped but the region's protection forbids the access.
    Protection {
        /// Faulting guest-virtual address.
        va: u64,
        /// The kind of access that was attempted.
        access: Access,
    },
    /// The address lies outside the architected virtual-address width.
    NonCanonical {
        /// Faulting guest-virtual address.
        va: u64,
    },
}

impl Fault {
    /// Returns the faulting guest-virtual address.
    pub fn va(&self) -> u64 {
        match *self {
            Fault::Unmapped { va } | Fault::NonCanonical { va } => va,
            Fault::Protection { va, .. } => va,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::Unmapped { va } => write!(f, "unmapped address {va:#x}"),
            Fault::Protection { va, access } => {
                write!(f, "protection violation at {va:#x} ({access:?} access)")
            }
            Fault::NonCanonical { va } => write!(f, "non-canonical address {va:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// An address-space management error (the `errno` family).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Start address or length is not page-aligned.
    BadAlign {
        /// Offending value.
        value: u64,
    },
    /// The requested range overlaps an existing mapping.
    Overlap {
        /// Start of the requested range.
        start: u64,
        /// End (exclusive) of the requested range.
        end: u64,
    },
    /// The requested range is empty or wraps around the address space.
    BadRange {
        /// Start of the requested range.
        start: u64,
        /// End (exclusive) of the requested range.
        end: u64,
    },
    /// No free gap large enough for an anonymous mapping was found.
    NoSpace {
        /// Requested length in bytes.
        len: u64,
    },
    /// The range is not fully covered by existing mappings.
    NotMapped {
        /// Start of the requested range.
        start: u64,
        /// End (exclusive) of the requested range.
        end: u64,
    },
    /// A `brk` request moved below the heap base.
    BadBrk {
        /// Requested program break.
        requested: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MemError::BadAlign { value } => write!(f, "value {value:#x} is not page-aligned"),
            MemError::Overlap { start, end } => {
                write!(f, "range {start:#x}..{end:#x} overlaps an existing mapping")
            }
            MemError::BadRange { start, end } => {
                write!(f, "invalid range {start:#x}..{end:#x}")
            }
            MemError::NoSpace { len } => {
                write!(f, "no free gap of {len:#x} bytes for anonymous mapping")
            }
            MemError::NotMapped { start, end } => {
                write!(f, "range {start:#x}..{end:#x} is not fully mapped")
            }
            MemError::BadBrk { requested } => {
                write!(f, "brk request {requested:#x} below heap base")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_display_mentions_address() {
        let f = Fault::Unmapped { va: 0xdead_b000 };
        assert!(f.to_string().contains("0xdeadb000"));
        assert_eq!(f.va(), 0xdead_b000);
    }

    #[test]
    fn protection_fault_reports_access_kind() {
        let f = Fault::Protection {
            va: 0x1000,
            access: Access::Write,
        };
        assert!(f.to_string().contains("Write"));
        assert_eq!(f.va(), 0x1000);
    }

    #[test]
    fn mem_error_display() {
        assert!(MemError::BadAlign { value: 3 }.to_string().contains("0x3"));
        assert!(MemError::NoSpace { len: 4096 }
            .to_string()
            .contains("0x1000"));
    }
}
