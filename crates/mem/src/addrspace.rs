//! The guest address space: regions + persistent page table + accessors.
//!
//! [`AddressSpace`] is the mutable working view a running extension step
//! sees. Taking a lightweight snapshot is [`AddressSpace::snapshot`] (an
//! O(1) structural clone); the snapshot is immutable simply because nobody
//! writes through its handle, and CoW in the page table guarantees writes
//! through *other* handles never reach it. This is the paper's "immutable
//! logical copy of the entire address space" realised in safe Rust.

use std::sync::Arc;

use crate::error::{Fault, MemError};
use crate::page::{is_page_aligned, page_offset, round_up_pages, vpn_of, Frame, PAGE_SIZE};
use crate::radix::{Node, PageTable, FANOUT_SHIFT, MAX_VPN};
use crate::region::{Access, Prot, Region, RegionKind, RegionMap};
use crate::stats::MemStats;

/// One past the highest valid guest-virtual address (48-bit space).
pub const VA_LIMIT: u64 = (MAX_VPN + 1) << crate::page::PAGE_SHIFT;

/// Canonical placement of the standard guest regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsLayout {
    /// Base of the program text mapping.
    pub code_base: u64,
    /// Base of the `brk`-managed heap.
    pub heap_base: u64,
    /// Top of the main stack (exclusive; the stack grows down from here).
    pub stack_top: u64,
    /// Default stack reservation in bytes.
    pub stack_size: u64,
    /// Lowest address handed out by `map_anon`.
    pub mmap_base: u64,
    /// Highest address usable by `map_anon` (exclusive).
    pub mmap_limit: u64,
}

impl Default for AsLayout {
    fn default() -> Self {
        AsLayout {
            code_base: 0x40_0000,
            heap_base: 0x1000_0000,
            stack_top: 0x7fff_ffff_f000,
            stack_size: 1 << 20,
            mmap_base: 0x2000_0000_0000,
            mmap_limit: 0x7000_0000_0000,
        }
    }
}

/// A snapshottable guest address space.
///
/// Cloning (or calling [`AddressSpace::snapshot`]) is O(1): the region map
/// and the page-table root are reference-shared, and copy-on-write keeps
/// every clone's view independent from that point on.
#[derive(Clone)]
pub struct AddressSpace {
    table: PageTable,
    regions: Arc<RegionMap>,
    layout: AsLayout,
    heap_base: u64,
    brk: u64,
    stats: MemStats,
    /// Two-entry read-side cache of recently used leaf nodes (code/data
    /// vs stack live in different leaves; two slots stop the thrash).
    ///
    /// Invalidated (dropped) before every mutation: holding the extra `Arc`
    /// would otherwise force a spurious CoW copy of the leaf and let the
    /// cache go stale.
    leaf_cache: [Option<(u64, Arc<Node>)>; 2],
    /// Per-access-kind cache of the last region hit (`[read, write,
    /// exec]`), skipping the `BTreeMap` walk on the hot path.
    region_cache: [Option<(u64, u64)>; 3],
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with the default layout.
    pub fn new() -> Self {
        Self::with_layout(AsLayout::default())
    }

    /// Creates an empty address space with a custom layout.
    pub fn with_layout(layout: AsLayout) -> Self {
        AddressSpace {
            table: PageTable::new(),
            regions: Arc::new(RegionMap::new()),
            layout,
            heap_base: layout.heap_base,
            brk: layout.heap_base,
            stats: MemStats::new(),
            leaf_cache: [None, None],
            region_cache: [None; 3],
        }
    }

    /// Takes a lightweight immutable snapshot: an O(1) structural clone.
    pub fn snapshot(&self) -> AddressSpace {
        self.clone()
    }

    /// The layout this space was created with.
    pub fn layout(&self) -> &AsLayout {
        &self.layout
    }

    /// Cumulative MMU counters for this handle.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The current program break.
    pub fn current_brk(&self) -> u64 {
        self.brk
    }

    /// The region map (read-only).
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    fn regions_mut(&mut self) -> &mut RegionMap {
        Arc::make_mut(&mut self.regions)
    }

    fn check_va_limit(start: u64, len: u64) -> Result<u64, MemError> {
        let end = start
            .checked_add(len)
            .ok_or(MemError::BadRange { start, end: 0 })?;
        if end > VA_LIMIT {
            return Err(MemError::BadRange { start, end });
        }
        Ok(end)
    }

    // ---------------------------------------------------------------
    // Mapping management (the mmap/munmap/mprotect/brk family).
    // ---------------------------------------------------------------

    /// Maps `[start, start+len)` at a fixed address.
    pub fn map_fixed(
        &mut self,
        start: u64,
        len: u64,
        prot: Prot,
        kind: RegionKind,
        name: &str,
    ) -> Result<(), MemError> {
        Self::check_va_limit(start, len)?;
        self.invalidate_caches();
        self.regions_mut().insert(Region {
            start,
            end: start + len,
            prot,
            kind,
            name: Arc::from(name),
        })
    }

    /// Maps `len` bytes of anonymous memory at a kernel-chosen address.
    pub fn map_anon(&mut self, len: u64, prot: Prot, name: &str) -> Result<u64, MemError> {
        if len == 0 || !is_page_aligned(len) {
            return Err(MemError::BadAlign { value: len });
        }
        let start = self
            .regions
            .find_gap(self.layout.mmap_base, len, self.layout.mmap_limit)
            .ok_or(MemError::NoSpace { len })?;
        self.map_fixed(start, len, prot, RegionKind::Anon, name)?;
        Ok(start)
    }

    /// Unmaps `[start, start+len)`, discarding any materialised frames.
    pub fn unmap(&mut self, start: u64, len: u64) -> Result<(), MemError> {
        Self::check_va_limit(start, len)?;
        self.invalidate_caches();
        let removed = self.regions_mut().remove_range(start, len)?;
        for (lo, hi) in removed {
            let (table, stats) = (&mut self.table, &mut self.stats);
            table.discard_range(vpn_of(lo), vpn_of(hi), stats);
        }
        Ok(())
    }

    /// Changes the protection of `[start, start+len)`.
    pub fn protect(&mut self, start: u64, len: u64, prot: Prot) -> Result<(), MemError> {
        Self::check_va_limit(start, len)?;
        self.invalidate_caches();
        self.regions_mut().set_prot(start, len, prot)
    }

    /// Maps the default stack region and returns the initial stack pointer.
    pub fn map_stack(&mut self) -> Result<u64, MemError> {
        let top = self.layout.stack_top;
        let size = self.layout.stack_size;
        self.map_fixed(top - size, size, Prot::RW, RegionKind::Stack, "[stack]")?;
        Ok(top)
    }

    /// Adjusts the program break, like `brk(2)`.
    ///
    /// `new_brk == 0` queries the current break. Growth maps pages up to the
    /// new break; shrinking discards the newly unreachable pages.
    pub fn brk(&mut self, new_brk: u64) -> Result<u64, MemError> {
        if new_brk == 0 {
            return Ok(self.brk);
        }
        if new_brk < self.heap_base {
            return Err(MemError::BadBrk { requested: new_brk });
        }
        Self::check_va_limit(new_brk, 0)?;
        self.invalidate_caches();
        let old_end = self.heap_base + round_up_pages(self.brk - self.heap_base);
        let new_end = self.heap_base + round_up_pages(new_brk - self.heap_base);
        if new_end > old_end {
            if old_end == self.heap_base {
                let heap_base = self.heap_base;
                self.regions_mut().insert(Region {
                    start: heap_base,
                    end: new_end,
                    prot: Prot::RW,
                    kind: RegionKind::Heap,
                    name: Arc::from("[heap]"),
                })?;
            } else {
                let heap_base = self.heap_base;
                self.regions_mut().resize(heap_base, new_end)?;
            }
        } else if new_end < old_end {
            let heap_base = self.heap_base;
            self.regions_mut().resize(heap_base, new_end)?;
            let (table, stats) = (&mut self.table, &mut self.stats);
            table.discard_range(vpn_of(new_end), vpn_of(old_end), stats);
        }
        self.brk = new_brk;
        Ok(self.brk)
    }

    // ---------------------------------------------------------------
    // Checked accessors (guest-visible semantics).
    // ---------------------------------------------------------------

    /// Reads `buf.len()` bytes from `va`, enforcing read protection.
    pub fn read_bytes(&mut self, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.check_fast(va, buf.len() as u64, Access::Read)?;
        self.copy_out(va, buf);
        self.stats.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes `data` starting at `va`, enforcing write protection.
    pub fn write_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), Fault> {
        self.check_fast(va, data.len() as u64, Access::Write)?;
        self.copy_in(va, data);
        self.stats.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Reads instruction bytes from `va`, enforcing execute protection.
    pub fn fetch_bytes(&mut self, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.check_fast(va, buf.len() as u64, Access::Exec)?;
        self.copy_out(va, buf);
        Ok(())
    }

    /// Resolves the executable frame containing `va` for an instruction
    /// cache: one protection check and one table walk buy direct access
    /// to the whole 4 KiB code page.
    ///
    /// Regions are page-granular, so execute permission for `va` implies
    /// it for the entire page. Demand-zero code pages return the shared
    /// zero frame (which decodes as illegal instructions). The returned
    /// frame is a stable snapshot: interpreters must drop it across any
    /// call that can remap or reprotect memory (i.e. guest syscalls).
    pub fn exec_frame(&mut self, va: u64) -> Result<Frame, Fault> {
        self.check_fast(va, 1, Access::Exec)?;
        Ok(self
            .cached_frame(vpn_of(va))
            .unwrap_or_else(crate::page::zero_frame))
    }

    /// Fills `[va, va+len)` with `byte`, enforcing write protection.
    pub fn fill(&mut self, va: u64, byte: u8, len: u64) -> Result<(), Fault> {
        self.check_fast(va, len, Access::Write)?;
        self.invalidate_leaf();
        let mut off = 0u64;
        while off < len {
            let cur = va + off;
            let poff = page_offset(cur);
            let n = ((PAGE_SIZE - poff) as u64).min(len - off);
            let (table, stats) = (&mut self.table, &mut self.stats);
            table.with_frame_mut(vpn_of(cur), stats, |page| {
                page.bytes_mut()[poff..poff + n as usize].fill(byte);
            });
            off += n;
        }
        self.stats.bytes_written += len;
        Ok(())
    }

    /// Reads a NUL-terminated string of at most `max` bytes from `va`.
    ///
    /// Returns the bytes excluding the terminator. Faults if the string
    /// (including its terminator) is not readable or no terminator is found
    /// within `max` bytes.
    pub fn read_cstr(&mut self, va: u64, max: usize) -> Result<Vec<u8>, Fault> {
        let mut out = Vec::new();
        let mut cur = va;
        while out.len() < max {
            let mut byte = [0u8; 1];
            self.read_bytes(cur, &mut byte)?;
            if byte[0] == 0 {
                return Ok(out);
            }
            out.push(byte[0]);
            cur = cur.checked_add(1).ok_or(Fault::NonCanonical { va: cur })?;
        }
        Err(Fault::Unmapped { va: cur })
    }

    // Typed little-endian accessors (single-page fast paths; accesses
    // that straddle a page boundary fall back to the generic engine).

    /// Reads `N` bytes at `va` without crossing a page boundary.
    #[inline]
    fn read_small<const N: usize>(&mut self, va: u64) -> Result<[u8; N], Fault> {
        let poff = page_offset(va);
        if poff + N <= PAGE_SIZE {
            self.check_fast(va, N as u64, Access::Read)?;
            self.stats.bytes_read += N as u64;
            return Ok(match self.cached_frame(vpn_of(va)) {
                Some(frame) => frame.bytes()[poff..poff + N]
                    .try_into()
                    .expect("bounded slice"),
                None => [0u8; N],
            });
        }
        let mut b = [0u8; N];
        self.read_bytes(va, &mut b)?;
        Ok(b)
    }

    /// Writes `N` bytes at `va` without crossing a page boundary.
    #[inline]
    fn write_small<const N: usize>(&mut self, va: u64, bytes: [u8; N]) -> Result<(), Fault> {
        let poff = page_offset(va);
        if poff + N <= PAGE_SIZE {
            self.check_fast(va, N as u64, Access::Write)?;
            self.invalidate_leaf();
            self.stats.bytes_written += N as u64;
            let (table, stats) = (&mut self.table, &mut self.stats);
            table.with_frame_mut(vpn_of(va), stats, |page| {
                page.bytes_mut()[poff..poff + N].copy_from_slice(&bytes);
            });
            return Ok(());
        }
        self.write_bytes(va, &bytes)
    }

    /// Reads a `u8` at `va`.
    pub fn read_u8(&mut self, va: u64) -> Result<u8, Fault> {
        Ok(self.read_small::<1>(va)?[0])
    }

    /// Reads a little-endian `u16` at `va`.
    pub fn read_u16(&mut self, va: u64) -> Result<u16, Fault> {
        Ok(u16::from_le_bytes(self.read_small(va)?))
    }

    /// Reads a little-endian `u32` at `va`.
    pub fn read_u32(&mut self, va: u64) -> Result<u32, Fault> {
        Ok(u32::from_le_bytes(self.read_small(va)?))
    }

    /// Reads a little-endian `u64` at `va`.
    pub fn read_u64(&mut self, va: u64) -> Result<u64, Fault> {
        Ok(u64::from_le_bytes(self.read_small(va)?))
    }

    /// Writes a `u8` at `va`.
    pub fn write_u8(&mut self, va: u64, v: u8) -> Result<(), Fault> {
        self.write_small(va, [v])
    }

    /// Writes a little-endian `u16` at `va`.
    pub fn write_u16(&mut self, va: u64, v: u16) -> Result<(), Fault> {
        self.write_small(va, v.to_le_bytes())
    }

    /// Writes a little-endian `u32` at `va`.
    pub fn write_u32(&mut self, va: u64, v: u32) -> Result<(), Fault> {
        self.write_small(va, v.to_le_bytes())
    }

    /// Writes a little-endian `u64` at `va`.
    pub fn write_u64(&mut self, va: u64, v: u64) -> Result<(), Fault> {
        self.write_small(va, v.to_le_bytes())
    }

    // ---------------------------------------------------------------
    // Supervisor accessors (loader / libOS: mapping required, protection
    // ignored — the libOS owns the page tables).
    // ---------------------------------------------------------------

    /// Writes `data` at `va` ignoring page protections (mapping required).
    pub fn poke_bytes(&mut self, va: u64, data: &[u8]) -> Result<(), Fault> {
        self.check_mapped(va, data.len() as u64)?;
        self.copy_in(va, data);
        Ok(())
    }

    /// Reads into `buf` from `va` ignoring page protections (mapping
    /// required). Does not touch stats or the read cache.
    pub fn peek_bytes(&self, va: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.check_mapped(va, buf.len() as u64)?;
        let mut off = 0usize;
        while off < buf.len() {
            let cur = va + off as u64;
            let poff = page_offset(cur);
            let n = (PAGE_SIZE - poff).min(buf.len() - off);
            match self.table.frame(vpn_of(cur)) {
                Some(frame) => buf[off..off + n].copy_from_slice(&frame.bytes()[poff..poff + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `va` without stats/protection checks.
    pub fn peek_u64(&self, va: u64) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.peek_bytes(va, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn check_mapped(&self, va: u64, len: u64) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let end = va.checked_add(len).ok_or(Fault::NonCanonical { va })?;
        let mut cursor = va;
        while cursor < end {
            let region = self
                .regions
                .find(cursor)
                .ok_or(Fault::Unmapped { va: cursor })?;
            cursor = region.end;
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Raw copy engine (no protection checks; caller has checked).
    // ---------------------------------------------------------------

    fn copy_out(&mut self, va: u64, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = va + off as u64;
            let poff = page_offset(cur);
            let n = (PAGE_SIZE - poff).min(buf.len() - off);
            match self.cached_frame(vpn_of(cur)) {
                Some(frame) => buf[off..off + n].copy_from_slice(&frame.bytes()[poff..poff + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    fn copy_in(&mut self, va: u64, data: &[u8]) {
        self.invalidate_leaf();
        let mut off = 0usize;
        while off < data.len() {
            let cur = va + off as u64;
            let poff = page_offset(cur);
            let n = (PAGE_SIZE - poff).min(data.len() - off);
            let (table, stats) = (&mut self.table, &mut self.stats);
            table.with_frame_mut(vpn_of(cur), stats, |page| {
                page.bytes_mut()[poff..poff + n].copy_from_slice(&data[off..off + n]);
            });
            off += n;
        }
    }

    /// Drops the leaf cache (before any write) so held `Arc`s cannot
    /// force spurious CoW copies or go stale.
    fn invalidate_leaf(&mut self) {
        self.leaf_cache = [None, None];
    }

    /// Drops every cache (on any region-map mutation).
    fn invalidate_caches(&mut self) {
        self.invalidate_leaf();
        self.region_cache = [None; 3];
    }

    /// Region check through the per-access-kind one-entry cache.
    fn check_fast(&mut self, va: u64, len: u64, access: Access) -> Result<(), Fault> {
        let slot = match access {
            Access::Read => 0,
            Access::Write => 1,
            Access::Exec => 2,
        };
        if let Some((start, end)) = self.region_cache[slot] {
            if va >= start && va < end && len <= end - va {
                return Ok(());
            }
        }
        self.regions.check(va, len, access)?;
        // Cache only single-region hits (the overwhelmingly common case).
        if let Some(region) = self.regions.find(va) {
            if va + len <= region.end {
                self.region_cache[slot] = Some((region.start, region.end));
            }
        }
        Ok(())
    }

    /// Resolves `vpn` to its frame through the two-entry leaf cache.
    fn cached_frame(&mut self, vpn: u64) -> Option<Frame> {
        let key = vpn >> FANOUT_SHIFT;
        let idx = (vpn & (crate::radix::FANOUT as u64 - 1)) as usize;
        for (cached_key, node) in self.leaf_cache.iter().flatten() {
            if *cached_key == key {
                self.stats.read_cache_hits += 1;
                if let Node::Leaf(frames) = &**node {
                    return frames[idx].clone();
                }
            }
        }
        self.stats.read_cache_misses += 1;
        let leaf = self.table.leaf_for(vpn)?;
        let frame = match &*leaf {
            Node::Leaf(frames) => frames[idx].clone(),
            Node::Interior(_) => None,
        };
        // Insert in slot 0, demoting the previous occupant (LRU of two).
        self.leaf_cache[1] = self.leaf_cache[0].take();
        self.leaf_cache[0] = Some((key, leaf));
        frame
    }

    // ---------------------------------------------------------------
    // Diagnostics and baselines.
    // ---------------------------------------------------------------

    /// Number of materialised (resident) pages.
    pub fn resident_pages(&self) -> u64 {
        self.table.count_frames()
    }

    /// Resident bytes (pages × page size).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages() * PAGE_SIZE as u64
    }

    /// Number of frames physically shared with `other` at identical vpns.
    pub fn shared_frames_with(&self, other: &AddressSpace) -> u64 {
        self.table.shared_frames_with(&other.table)
    }

    /// Returns `true` if no CoW divergence has happened since `other` was
    /// cloned from this space (identical root).
    pub fn same_table_root(&self, other: &AddressSpace) -> bool {
        self.table.same_root(&other.table)
    }

    /// Full-copy checkpoint baseline: duplicates every resident frame.
    ///
    /// Cost is O(resident bytes); used by the granularity-crossover
    /// experiment as the non-CoW comparison point.
    pub fn deep_copy(&self) -> AddressSpace {
        AddressSpace {
            table: self.table.deep_copy(),
            regions: Arc::new((*self.regions).clone()),
            layout: self.layout,
            heap_base: self.heap_base,
            brk: self.brk,
            stats: self.stats,
            leaf_cache: [None, None],
            region_cache: [None; 3],
        }
    }

    /// Renders a `/proc/<pid>/maps`-style listing of the regions.
    pub fn render_maps(&self) -> String {
        self.regions.render_maps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with_ram(pages: u64) -> AddressSpace {
        let mut asp = AddressSpace::new();
        asp.map_fixed(
            0x1_0000,
            pages * PAGE_SIZE as u64,
            Prot::RW,
            RegionKind::Anon,
            "ram",
        )
        .unwrap();
        asp
    }

    #[test]
    fn rw_roundtrip_within_page() {
        let mut asp = space_with_ram(4);
        asp.write_u64(0x1_0008, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(asp.read_u64(0x1_0008).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(asp.read_u8(0x1_0008).unwrap(), 0x0d);
        assert_eq!(asp.read_u16(0x1_0008).unwrap(), 0xf00d);
        assert_eq!(asp.read_u32(0x1_0008).unwrap(), 0xcafe_f00d);
    }

    #[test]
    fn rw_across_page_boundary() {
        let mut asp = space_with_ram(4);
        let va = 0x1_0000 + PAGE_SIZE as u64 - 3;
        asp.write_u64(va, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(asp.read_u64(va).unwrap(), 0x1122_3344_5566_7788);
        // Bytes landed on both pages.
        assert_eq!(asp.read_u8(va).unwrap(), 0x88);
        assert_eq!(asp.read_u8(va + 7).unwrap(), 0x11);
    }

    #[test]
    fn unmapped_read_faults() {
        let mut asp = space_with_ram(1);
        assert_eq!(asp.read_u8(0x5_0000), Err(Fault::Unmapped { va: 0x5_0000 }));
        // Read straddling the end of the mapping faults at the boundary.
        let end = 0x1_0000 + PAGE_SIZE as u64;
        assert_eq!(asp.read_u64(end - 4), Err(Fault::Unmapped { va: end }));
    }

    #[test]
    fn protection_enforced() {
        let mut asp = AddressSpace::new();
        asp.map_fixed(0x1_0000, 0x1000, Prot::R, RegionKind::Data, "ro")
            .unwrap();
        assert_eq!(asp.read_u8(0x1_0000).unwrap(), 0);
        assert_eq!(
            asp.write_u8(0x1_0000, 1),
            Err(Fault::Protection {
                va: 0x1_0000,
                access: Access::Write
            })
        );
        let mut b = [0u8; 4];
        assert_eq!(
            asp.fetch_bytes(0x1_0000, &mut b),
            Err(Fault::Protection {
                va: 0x1_0000,
                access: Access::Exec
            })
        );
    }

    #[test]
    fn poke_ignores_protection_peek_reads() {
        let mut asp = AddressSpace::new();
        asp.map_fixed(0x1_0000, 0x1000, Prot::RX, RegionKind::Code, "text")
            .unwrap();
        asp.poke_bytes(0x1_0000, &[1, 2, 3]).unwrap();
        let mut b = [0u8; 3];
        asp.peek_bytes(0x1_0000, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3]);
        // But poke still requires a mapping.
        assert!(asp.poke_bytes(0x9_0000, &[0]).is_err());
    }

    #[test]
    fn demand_zero_reads_do_not_materialise() {
        let mut asp = space_with_ram(64);
        let mut buf = vec![0xffu8; 64 * PAGE_SIZE];
        asp.read_bytes(0x1_0000, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(asp.resident_pages(), 0, "reads must not allocate frames");
    }

    #[test]
    fn snapshot_isolation() {
        let mut asp = space_with_ram(8);
        asp.write_u64(0x1_0000, 111).unwrap();
        let mut snap = asp.snapshot();
        asp.write_u64(0x1_0000, 222).unwrap();
        assert_eq!(asp.read_u64(0x1_0000).unwrap(), 222);
        assert_eq!(snap.read_u64(0x1_0000).unwrap(), 111);
        // Writing through the snapshot handle also leaves the parent alone.
        snap.write_u64(0x1_0000, 333).unwrap();
        assert_eq!(asp.read_u64(0x1_0000).unwrap(), 222);
    }

    #[test]
    fn snapshot_cow_copies_only_touched_pages() {
        let mut asp = space_with_ram(100);
        for i in 0..100u64 {
            asp.write_u64(0x1_0000 + i * PAGE_SIZE as u64, i).unwrap();
        }
        let snap = asp.snapshot();
        let before = *asp.stats();
        for i in 0..5u64 {
            asp.write_u64(0x1_0000 + i * PAGE_SIZE as u64, 999).unwrap();
        }
        let d = asp.stats().delta(&before);
        assert_eq!(d.cow_page_copies, 5, "exactly the touched pages are copied");
        assert_eq!(asp.shared_frames_with(&snap), 95);
    }

    #[test]
    fn snapshot_then_region_change_is_isolated() {
        let mut asp = space_with_ram(4);
        let snap = asp.snapshot();
        asp.unmap(0x1_0000, PAGE_SIZE as u64).unwrap();
        assert!(asp.regions().find(0x1_0000).is_none());
        assert!(
            snap.regions().find(0x1_0000).is_some(),
            "snapshot keeps its regions"
        );
    }

    #[test]
    fn map_anon_finds_gaps() {
        let mut asp = AddressSpace::new();
        let a = asp.map_anon(0x2000, Prot::RW, "a").unwrap();
        let b = asp.map_anon(0x1000, Prot::RW, "b").unwrap();
        assert_ne!(a, b);
        assert!(b >= a + 0x2000 || a >= b + 0x1000);
        asp.write_u8(a, 1).unwrap();
        asp.write_u8(b, 2).unwrap();
    }

    #[test]
    fn map_anon_rejects_unaligned_and_zero() {
        let mut asp = AddressSpace::new();
        assert!(matches!(
            asp.map_anon(0, Prot::RW, "z"),
            Err(MemError::BadAlign { .. })
        ));
        assert!(matches!(
            asp.map_anon(123, Prot::RW, "u"),
            Err(MemError::BadAlign { .. })
        ));
    }

    #[test]
    fn unmap_discards_frames() {
        let mut asp = space_with_ram(4);
        asp.write_u64(0x1_0000, 7).unwrap();
        asp.write_u64(0x1_0000 + PAGE_SIZE as u64, 8).unwrap();
        assert_eq!(asp.resident_pages(), 2);
        asp.unmap(0x1_0000, PAGE_SIZE as u64).unwrap();
        assert_eq!(asp.resident_pages(), 1);
        assert_eq!(asp.read_u8(0x1_0000), Err(Fault::Unmapped { va: 0x1_0000 }));
    }

    #[test]
    fn remap_after_unmap_reads_zero() {
        let mut asp = space_with_ram(1);
        asp.write_u64(0x1_0000, 7).unwrap();
        asp.unmap(0x1_0000, PAGE_SIZE as u64).unwrap();
        asp.map_fixed(
            0x1_0000,
            PAGE_SIZE as u64,
            Prot::RW,
            RegionKind::Anon,
            "again",
        )
        .unwrap();
        assert_eq!(
            asp.read_u64(0x1_0000).unwrap(),
            0,
            "old contents must not leak"
        );
    }

    #[test]
    fn protect_then_fault() {
        let mut asp = space_with_ram(2);
        asp.write_u8(0x1_0000, 1).unwrap();
        asp.protect(0x1_0000, PAGE_SIZE as u64, Prot::R).unwrap();
        assert!(asp.write_u8(0x1_0000, 2).is_err());
        assert_eq!(asp.read_u8(0x1_0000).unwrap(), 1);
        // Second page unaffected.
        asp.write_u8(0x1_0000 + PAGE_SIZE as u64, 3).unwrap();
    }

    #[test]
    fn brk_grow_and_shrink() {
        let mut asp = AddressSpace::new();
        let base = asp.layout().heap_base;
        assert_eq!(asp.brk(0).unwrap(), base);
        asp.brk(base + 100).unwrap();
        asp.write_u8(base + 50, 9).unwrap();
        // Beyond the page containing brk faults.
        assert!(asp.write_u8(base + PAGE_SIZE as u64, 1).is_err());
        asp.brk(base + 3 * PAGE_SIZE as u64).unwrap();
        asp.write_u8(base + 2 * PAGE_SIZE as u64, 1).unwrap();
        assert_eq!(asp.resident_pages(), 2);
        // Shrink discards pages.
        asp.brk(base + 100).unwrap();
        assert_eq!(asp.resident_pages(), 1);
        assert!(asp.write_u8(base + 2 * PAGE_SIZE as u64, 1).is_err());
        // Below heap base is an error.
        assert!(matches!(asp.brk(base - 1), Err(MemError::BadBrk { .. })));
    }

    #[test]
    fn brk_shrink_then_grow_zeroes() {
        let mut asp = AddressSpace::new();
        let base = asp.layout().heap_base;
        asp.brk(base + PAGE_SIZE as u64).unwrap();
        asp.write_u64(base, 42).unwrap();
        asp.brk(base).unwrap();
        asp.brk(base + PAGE_SIZE as u64).unwrap();
        assert_eq!(asp.read_u64(base).unwrap(), 0);
    }

    #[test]
    fn map_stack_gives_writable_top() {
        let mut asp = AddressSpace::new();
        let sp = asp.map_stack().unwrap();
        asp.write_u64(sp - 8, 0x1234).unwrap();
        assert_eq!(asp.read_u64(sp - 8).unwrap(), 0x1234);
    }

    #[test]
    fn fill_spans_pages() {
        let mut asp = space_with_ram(3);
        asp.fill(0x1_0000 + 100, 0xaa, 2 * PAGE_SIZE as u64)
            .unwrap();
        assert_eq!(asp.read_u8(0x1_0000 + 100).unwrap(), 0xaa);
        assert_eq!(
            asp.read_u8(0x1_0000 + 100 + 2 * PAGE_SIZE as u64 - 1)
                .unwrap(),
            0xaa
        );
        assert_eq!(asp.read_u8(0x1_0000 + 99).unwrap(), 0);
        assert_eq!(
            asp.read_u8(0x1_0000 + 100 + 2 * PAGE_SIZE as u64).unwrap(),
            0
        );
    }

    #[test]
    fn cstr_roundtrip() {
        let mut asp = space_with_ram(1);
        asp.write_bytes(0x1_0000, b"hello\0world").unwrap();
        assert_eq!(asp.read_cstr(0x1_0000, 64).unwrap(), b"hello");
        // Missing terminator within budget is an error.
        asp.fill(0x1_0000, b'x', 16).unwrap();
        assert!(asp.read_cstr(0x1_0000, 8).is_err());
    }

    #[test]
    fn deep_copy_is_fully_unshared() {
        let mut asp = space_with_ram(10);
        for i in 0..10u64 {
            asp.write_u64(0x1_0000 + i * PAGE_SIZE as u64, i).unwrap();
        }
        let mut copy = asp.deep_copy();
        assert_eq!(copy.shared_frames_with(&asp), 0);
        copy.write_u64(0x1_0000, 999).unwrap();
        assert_eq!(asp.read_u64(0x1_0000).unwrap(), 0);
    }

    #[test]
    fn read_cache_hits_on_sequential_access() {
        let mut asp = space_with_ram(1);
        asp.write_u64(0x1_0000, 1).unwrap();
        let before = *asp.stats();
        for i in 0..64 {
            asp.read_u64(0x1_0000 + i * 8).unwrap();
        }
        let d = asp.stats().delta(&before);
        assert!(
            d.read_cache_hits >= 63,
            "sequential reads should hit the leaf cache"
        );
    }

    #[test]
    fn va_limit_enforced() {
        let mut asp = AddressSpace::new();
        assert!(matches!(
            asp.map_fixed(
                VA_LIMIT - 0x1000,
                0x2000,
                Prot::RW,
                RegionKind::Anon,
                "high"
            ),
            Err(MemError::BadRange { .. })
        ));
        // Exactly at the limit is fine.
        asp.map_fixed(VA_LIMIT - 0x1000, 0x1000, Prot::RW, RegionKind::Anon, "top")
            .unwrap();
        asp.write_u8(VA_LIMIT - 1, 1).unwrap();
    }

    #[test]
    fn snapshot_preserves_brk() {
        let mut asp = AddressSpace::new();
        let base = asp.layout().heap_base;
        asp.brk(base + 0x1000).unwrap();
        let snap = asp.snapshot();
        asp.brk(base + 0x10000).unwrap();
        assert_eq!(snap.current_brk(), base + 0x1000);
    }
}
