//! The persistent radix page table.
//!
//! A 4-level, 512-way radix tree maps 36-bit virtual page numbers (48-bit
//! addresses) to [`Frame`]s — the same shape as an x86-64 hardware page
//! table, which is what the paper's Dune libOS manipulates through nested
//! paging.
//!
//! The tree is *persistent* (in the functional-data-structure sense):
//! interior nodes and frames are shared via `Arc`. Taking a snapshot of an
//! address space clones the root `Arc` — O(1) regardless of how much memory
//! is mapped. A subsequent write path-copies at most [`LEVELS`] nodes and
//! copies at most one 4 KiB frame; untouched subtrees remain shared between
//! all snapshots, byte-for-byte and pointer-for-pointer. This reproduces, in
//! software, the CoW fault behaviour the paper gets from hardware paging.

use std::sync::Arc;

use crate::page::{fresh_zero_frame, Frame, PageBuf};
use crate::stats::MemStats;

/// Number of radix levels (level 0 is the leaf level).
pub const LEVELS: u32 = 4;

/// Log2 of the node fan-out.
pub const FANOUT_SHIFT: u32 = 9;

/// Node fan-out (entries per node).
pub const FANOUT: usize = 1 << FANOUT_SHIFT;

/// Number of virtual-page-number bits the tree can map.
pub const VPN_BITS: u32 = LEVELS * FANOUT_SHIFT;

/// Highest mappable virtual page number (inclusive).
pub const MAX_VPN: u64 = (1u64 << VPN_BITS) - 1;

/// Returns the slot index of `vpn` at `level`.
#[inline]
fn slot(vpn: u64, level: u32) -> usize {
    ((vpn >> (FANOUT_SHIFT * level)) & (FANOUT as u64 - 1)) as usize
}

/// Number of pages covered by one entry of a node at `level`.
#[inline]
fn span(level: u32) -> u64 {
    1u64 << (FANOUT_SHIFT * level)
}

/// One node of the radix tree.
#[derive(Clone)]
pub(crate) enum Node {
    /// Levels 3..1: pointers to child nodes.
    Interior(Box<[Option<Arc<Node>>]>),
    /// Level 0: pointers to frames.
    Leaf(Box<[Option<Frame>]>),
}

impl Node {
    fn new_interior() -> Node {
        Node::Interior(empty_slots())
    }

    fn new_leaf() -> Node {
        Node::Leaf(empty_slots())
    }

    fn new_for_level(level: u32) -> Node {
        if level == 0 {
            Node::new_leaf()
        } else {
            Node::new_interior()
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            Node::Interior(slots) => slots.iter().all(Option::is_none),
            Node::Leaf(frames) => frames.iter().all(Option::is_none),
        }
    }
}

fn empty_slots<T>() -> Box<[Option<T>]> {
    (0..FANOUT).map(|_| None).collect()
}

/// A persistent map from virtual page numbers to frames.
///
/// Cloning is O(1) and shares all structure; mutation copies only the
/// nodes along the touched path (and the touched frame, if shared).
#[derive(Clone)]
pub struct PageTable {
    root: Arc<Node>,
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            root: Arc::new(Node::new_interior()),
        }
    }

    /// Returns `true` if the two tables share their entire structure.
    pub fn same_root(&self, other: &PageTable) -> bool {
        Arc::ptr_eq(&self.root, &other.root)
    }

    /// Looks up the frame mapped at `vpn`, if one has been materialised.
    ///
    /// Demand-zero pages that were never written have no frame and return
    /// `None`; the caller reads zeroes for them.
    pub fn frame(&self, vpn: u64) -> Option<&Frame> {
        debug_assert!(vpn <= MAX_VPN);
        let mut node: &Node = &self.root;
        for level in (1..LEVELS).rev() {
            match node {
                Node::Interior(slots) => {
                    node = slots[slot(vpn, level)].as_deref()?;
                }
                Node::Leaf(_) => unreachable!("leaf above level 0"),
            }
        }
        match node {
            Node::Leaf(frames) => frames[slot(vpn, 0)].as_ref(),
            Node::Interior(_) => unreachable!("interior at level 0"),
        }
    }

    /// Returns the leaf node covering `vpn`, for the read-side leaf cache.
    pub(crate) fn leaf_for(&self, vpn: u64) -> Option<Arc<Node>> {
        let mut node: &Arc<Node> = &self.root;
        for level in (1..LEVELS).rev() {
            match &**node {
                Node::Interior(slots) => {
                    node = slots[slot(vpn, level)].as_ref()?;
                }
                Node::Leaf(_) => unreachable!("leaf above level 0"),
            }
        }
        Some(node.clone())
    }

    /// Gives mutable access to the frame at `vpn`, materialising the path
    /// and a zero frame as needed, with CoW on shared nodes/frames.
    ///
    /// `stats` records node copies, CoW page copies and zero fills.
    pub fn with_frame_mut<R>(
        &mut self,
        vpn: u64,
        stats: &mut MemStats,
        f: impl FnOnce(&mut PageBuf) -> R,
    ) -> R {
        debug_assert!(vpn <= MAX_VPN);
        let mut cur: &mut Arc<Node> = &mut self.root;
        for level in (1..LEVELS).rev() {
            if Arc::strong_count(cur) > 1 {
                stats.node_copies += 1;
            }
            match Arc::make_mut(cur) {
                Node::Interior(slots) => {
                    cur = slots[slot(vpn, level)]
                        .get_or_insert_with(|| Arc::new(Node::new_for_level(level - 1)));
                }
                Node::Leaf(_) => unreachable!("leaf above level 0"),
            }
        }
        if Arc::strong_count(cur) > 1 {
            stats.node_copies += 1;
        }
        match Arc::make_mut(cur) {
            Node::Leaf(frames) => {
                let entry = &mut frames[slot(vpn, 0)];
                let frame = match entry {
                    Some(frame) => {
                        if Arc::strong_count(frame) > 1 {
                            stats.cow_page_copies += 1;
                        }
                        frame
                    }
                    None => {
                        stats.zero_fills += 1;
                        entry.insert(fresh_zero_frame())
                    }
                };
                f(Arc::make_mut(frame))
            }
            Node::Interior(_) => unreachable!("interior at level 0"),
        }
    }

    /// Maps `vpn` directly to `frame`, replacing any existing mapping.
    ///
    /// Used by loaders to install pre-built pages without a CoW copy.
    pub fn install(&mut self, vpn: u64, frame: Frame, stats: &mut MemStats) {
        debug_assert!(vpn <= MAX_VPN);
        let mut cur: &mut Arc<Node> = &mut self.root;
        for level in (1..LEVELS).rev() {
            if Arc::strong_count(cur) > 1 {
                stats.node_copies += 1;
            }
            match Arc::make_mut(cur) {
                Node::Interior(slots) => {
                    cur = slots[slot(vpn, level)]
                        .get_or_insert_with(|| Arc::new(Node::new_for_level(level - 1)));
                }
                Node::Leaf(_) => unreachable!("leaf above level 0"),
            }
        }
        if Arc::strong_count(cur) > 1 {
            stats.node_copies += 1;
        }
        match Arc::make_mut(cur) {
            Node::Leaf(frames) => frames[slot(vpn, 0)] = Some(frame),
            Node::Interior(_) => unreachable!("interior at level 0"),
        }
    }

    /// Discards all frames with vpn in `[lo, hi)`, pruning empty subtrees.
    ///
    /// Returns the number of frames discarded (recorded in
    /// `stats.pages_discarded` as well).
    pub fn discard_range(&mut self, lo: u64, hi: u64, stats: &mut MemStats) -> u64 {
        if lo >= hi {
            return 0;
        }
        let discarded = discard_rec(&mut self.root, LEVELS - 1, 0, lo, hi.min(MAX_VPN + 1));
        stats.pages_discarded += discarded;
        discarded
    }

    /// Calls `f` for every materialised frame, in ascending vpn order.
    pub fn for_each_frame(&self, mut f: impl FnMut(u64, &Frame)) {
        for_each_rec(&self.root, LEVELS - 1, 0, &mut f);
    }

    /// Number of materialised frames.
    pub fn count_frames(&self) -> u64 {
        let mut n = 0;
        self.for_each_frame(|_, _| n += 1);
        n
    }

    /// Number of frames whose storage is pointer-identical in `other` at the
    /// same vpn — i.e. physically shared between the two tables.
    pub fn shared_frames_with(&self, other: &PageTable) -> u64 {
        let mut n = 0;
        self.for_each_frame(|vpn, frame| {
            if let Some(o) = other.frame(vpn) {
                if Arc::ptr_eq(frame, o) {
                    n += 1;
                }
            }
        });
        n
    }

    /// Produces a deep copy in which every frame is freshly allocated.
    ///
    /// This is the "full checkpoint" baseline of experiment E3: cost is
    /// proportional to the number of resident pages.
    pub fn deep_copy(&self) -> PageTable {
        let mut out = PageTable::new();
        let mut scratch = MemStats::new();
        self.for_each_frame(|vpn, frame| {
            out.install(
                vpn,
                Arc::new(PageBuf((*frame.bytes()).to_owned())),
                &mut scratch,
            );
        });
        out
    }
}

fn discard_rec(node: &mut Arc<Node>, level: u32, base: u64, lo: u64, hi: u64) -> u64 {
    let node_span = span(level + 1);
    let node_lo = base;
    let node_hi = base + node_span;
    if hi <= node_lo || lo >= node_hi {
        return 0;
    }
    // Count frames in fully covered subtrees without copying nodes.
    let mut discarded = 0u64;
    let make_none = lo <= node_lo && node_hi <= hi;
    if make_none {
        // Whole node goes away; caller clears the slot. Count first.
        return count_rec(node, level);
    }
    let node = Arc::make_mut(node);
    match node {
        Node::Interior(slots) => {
            let child_span = span(level);
            for (i, entry) in slots.iter_mut().enumerate() {
                let child_lo = base + i as u64 * child_span;
                let child_hi = child_lo + child_span;
                if hi <= child_lo || lo >= child_hi {
                    continue;
                }
                if let Some(child) = entry {
                    if lo <= child_lo && child_hi <= hi {
                        discarded += count_rec(child, level - 1);
                        *entry = None;
                    } else {
                        discarded += discard_rec(child, level - 1, child_lo, lo, hi);
                        if child.is_empty() {
                            *entry = None;
                        }
                    }
                }
            }
        }
        Node::Leaf(frames) => {
            for (i, entry) in frames.iter_mut().enumerate() {
                let vpn = base + i as u64;
                if lo <= vpn && vpn < hi && entry.is_some() {
                    *entry = None;
                    discarded += 1;
                }
            }
        }
    }
    discarded
}

#[allow(clippy::only_used_in_recursion)] // mirrors discard_rec's signature
fn count_rec(node: &Arc<Node>, level: u32) -> u64 {
    match &**node {
        Node::Interior(slots) => {
            let mut n = 0;
            for entry in slots.iter().flatten() {
                n += count_rec(entry, level - 1);
            }
            n
        }
        Node::Leaf(frames) => frames.iter().flatten().count() as u64,
    }
}

fn for_each_rec(node: &Arc<Node>, level: u32, base: u64, f: &mut impl FnMut(u64, &Frame)) {
    match &**node {
        Node::Interior(slots) => {
            let child_span = span(level);
            for (i, entry) in slots.iter().enumerate() {
                if let Some(child) = entry {
                    for_each_rec(child, level - 1, base + i as u64 * child_span, f);
                }
            }
        }
        Node::Leaf(frames) => {
            for (i, entry) in frames.iter().enumerate() {
                if let Some(frame) = entry {
                    f(base + i as u64, frame);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_byte(pt: &mut PageTable, vpn: u64, off: usize, val: u8, stats: &mut MemStats) {
        pt.with_frame_mut(vpn, stats, |page| page.bytes_mut()[off] = val);
    }

    fn read_byte(pt: &PageTable, vpn: u64, off: usize) -> u8 {
        pt.frame(vpn).map(|f| f.bytes()[off]).unwrap_or(0)
    }

    #[test]
    fn empty_table_reads_nothing() {
        let pt = PageTable::new();
        assert!(pt.frame(0).is_none());
        assert!(pt.frame(MAX_VPN).is_none());
        assert_eq!(pt.count_frames(), 0);
    }

    #[test]
    fn write_then_read_back() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        write_byte(&mut pt, 5, 100, 0xab, &mut stats);
        assert_eq!(read_byte(&pt, 5, 100), 0xab);
        assert_eq!(read_byte(&pt, 5, 101), 0);
        assert_eq!(stats.zero_fills, 1);
        assert_eq!(stats.cow_page_copies, 0);
        assert_eq!(pt.count_frames(), 1);
    }

    #[test]
    fn distant_vpns_use_distinct_subtrees() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        // vpns differing at the top level.
        let far = 1u64 << (FANOUT_SHIFT * 3);
        write_byte(&mut pt, 0, 0, 1, &mut stats);
        write_byte(&mut pt, far, 0, 2, &mut stats);
        assert_eq!(read_byte(&pt, 0, 0), 1);
        assert_eq!(read_byte(&pt, far, 0), 2);
        assert_eq!(pt.count_frames(), 2);
    }

    #[test]
    fn snapshot_is_o1_and_isolated() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        write_byte(&mut pt, 7, 0, 11, &mut stats);
        let snap = pt.clone();
        assert!(snap.same_root(&pt));

        write_byte(&mut pt, 7, 0, 99, &mut stats);
        assert_eq!(read_byte(&pt, 7, 0), 99);
        assert_eq!(read_byte(&snap, 7, 0), 11, "snapshot must be immutable");
        assert!(!snap.same_root(&pt));
        assert_eq!(stats.cow_page_copies, 1);
        assert_eq!(stats.node_copies, LEVELS as u64, "one copy per level");
    }

    #[test]
    fn untouched_pages_stay_shared_after_snapshot() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        for vpn in 0..100 {
            write_byte(&mut pt, vpn, 0, vpn as u8, &mut stats);
        }
        let snap = pt.clone();
        write_byte(&mut pt, 3, 0, 0xff, &mut stats);
        // 99 of 100 frames still physically shared.
        assert_eq!(pt.shared_frames_with(&snap), 99);
        // And the data of untouched pages matches.
        for vpn in 0..100 {
            if vpn != 3 {
                assert_eq!(read_byte(&pt, vpn, 0), vpn as u8);
            }
        }
    }

    #[test]
    fn second_write_after_cow_is_free() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        write_byte(&mut pt, 1, 0, 1, &mut stats);
        let _snap = pt.clone();
        write_byte(&mut pt, 1, 0, 2, &mut stats);
        let copies_after_first = stats.cow_page_copies;
        write_byte(&mut pt, 1, 1, 3, &mut stats);
        assert_eq!(
            stats.cow_page_copies, copies_after_first,
            "page now unique; no more copies"
        );
    }

    #[test]
    fn discard_range_removes_and_prunes() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        for vpn in 0..10 {
            write_byte(&mut pt, vpn, 0, 1, &mut stats);
        }
        let n = pt.discard_range(2, 5, &mut stats);
        assert_eq!(n, 3);
        assert_eq!(stats.pages_discarded, 3);
        assert_eq!(pt.count_frames(), 7);
        assert!(pt.frame(2).is_none());
        assert!(pt.frame(5).is_some());
    }

    #[test]
    fn discard_whole_subtree() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        let base = 1u64 << (FANOUT_SHIFT * 2);
        for i in 0..600u64 {
            write_byte(&mut pt, base + i, 0, 1, &mut stats);
        }
        // Covers more than one full leaf node.
        let n = pt.discard_range(base, base + 600, &mut stats);
        assert_eq!(n, 600);
        assert_eq!(pt.count_frames(), 0);
    }

    #[test]
    fn discard_does_not_affect_snapshot() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        write_byte(&mut pt, 4, 0, 7, &mut stats);
        let snap = pt.clone();
        pt.discard_range(0, 100, &mut stats);
        assert!(pt.frame(4).is_none());
        assert_eq!(read_byte(&snap, 4, 0), 7);
    }

    #[test]
    fn install_replaces_frame() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        let mut buf = PageBuf::zeroed();
        buf.bytes_mut()[0] = 0x55;
        pt.install(9, Arc::new(buf), &mut stats);
        assert_eq!(read_byte(&pt, 9, 0), 0x55);
        assert_eq!(stats.zero_fills, 0, "install is not a zero fill");
    }

    #[test]
    fn for_each_frame_in_order() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        for &vpn in &[10u64, 2, 77, 3000] {
            write_byte(&mut pt, vpn, 0, 1, &mut stats);
        }
        let mut seen = Vec::new();
        pt.for_each_frame(|vpn, _| seen.push(vpn));
        assert_eq!(seen, vec![2, 10, 77, 3000]);
    }

    #[test]
    fn deep_copy_shares_nothing() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        for vpn in 0..20 {
            write_byte(&mut pt, vpn, 0, vpn as u8, &mut stats);
        }
        let copy = pt.deep_copy();
        assert_eq!(copy.count_frames(), 20);
        assert_eq!(copy.shared_frames_with(&pt), 0);
        for vpn in 0..20 {
            assert_eq!(read_byte(&copy, vpn, 0), vpn as u8);
        }
    }

    #[test]
    fn max_vpn_is_mappable() {
        let mut pt = PageTable::new();
        let mut stats = MemStats::new();
        write_byte(&mut pt, MAX_VPN, 4095, 0xee, &mut stats);
        assert_eq!(read_byte(&pt, MAX_VPN, 4095), 0xee);
    }
}
