//! Physical frames: 4 KiB pages shared by reference counting.
//!
//! A [`Frame`] is the unit of copy-on-write sharing. Frames are immutable
//! while shared; mutation goes through [`Frame::make_mut`]-style access in
//! the page table, which transparently copies a frame whose reference count
//! is greater than one. This mirrors what the paper's libOS does with nested
//! page tables: a snapshot shares every frame read-only, and the first write
//! through any descendant copies exactly one 4 KiB page.

use std::sync::{Arc, OnceLock};

/// Log2 of the page size (4 KiB pages, the x86-64 base page size).
pub const PAGE_SHIFT: u32 = 12;

/// Size of one guest page in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Returns the page-aligned base of `va`.
#[inline]
pub fn page_base(va: u64) -> u64 {
    va & !PAGE_MASK
}

/// Returns the offset of `va` within its page.
#[inline]
pub fn page_offset(va: u64) -> usize {
    (va & PAGE_MASK) as usize
}

/// Returns the virtual page number of `va`.
#[inline]
pub fn vpn_of(va: u64) -> u64 {
    va >> PAGE_SHIFT
}

/// Rounds `len` up to a whole number of pages.
#[inline]
pub fn round_up_pages(len: u64) -> u64 {
    (len + PAGE_MASK) & !PAGE_MASK
}

/// Returns `true` if `va` is page-aligned.
#[inline]
pub fn is_page_aligned(va: u64) -> bool {
    va & PAGE_MASK == 0
}

/// The backing storage of one guest page.
///
/// Boxed inside an [`Arc`] this is the "physical frame" of the software MMU.
#[derive(Clone)]
pub struct PageBuf(pub [u8; PAGE_SIZE]);

impl PageBuf {
    /// Returns a freshly zeroed page buffer.
    pub fn zeroed() -> Self {
        PageBuf([0u8; PAGE_SIZE])
    }

    /// Read-only view of the page bytes.
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Mutable view of the page bytes.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.0
    }
}

impl Default for PageBuf {
    fn default() -> Self {
        PageBuf::zeroed()
    }
}

/// A reference-counted physical frame.
///
/// Cloning a `Frame` is O(1) and expresses sharing between address-space
/// snapshots; the frame contents are copied lazily on the first write while
/// shared (copy-on-write).
pub type Frame = Arc<PageBuf>;

/// Returns the process-wide shared all-zeroes frame.
///
/// Demand-zero pages can be satisfied by this frame on the read path without
/// materialising per-page storage; the first write copies it, which is
/// exactly the zero-fill-on-demand behaviour of a real kernel.
pub fn zero_frame() -> Frame {
    static ZERO: OnceLock<Frame> = OnceLock::new();
    ZERO.get_or_init(|| Arc::new(PageBuf::zeroed())).clone()
}

/// Allocates a fresh, uniquely-owned zeroed frame.
pub fn fresh_zero_frame() -> Frame {
    Arc::new(PageBuf::zeroed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        assert_eq!(page_base(0x1fff), 0x1000);
        assert_eq!(page_offset(0x1fff), 0xfff);
        assert_eq!(vpn_of(0x3000), 3);
        assert_eq!(round_up_pages(1), PAGE_SIZE as u64);
        assert_eq!(round_up_pages(0), 0);
        assert_eq!(round_up_pages(PAGE_SIZE as u64), PAGE_SIZE as u64);
        assert!(is_page_aligned(0x2000));
        assert!(!is_page_aligned(0x2001));
    }

    #[test]
    fn zero_frame_is_shared_and_zero() {
        let a = zero_frame();
        let b = zero_frame();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn fresh_zero_frame_is_unique() {
        let a = fresh_zero_frame();
        let b = fresh_zero_frame();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(Arc::strong_count(&a), 1);
    }

    #[test]
    fn cow_semantics_via_make_mut() {
        let mut a = fresh_zero_frame();
        let b = a.clone();
        // Shared: make_mut must copy.
        Arc::make_mut(&mut a).bytes_mut()[0] = 42;
        assert_eq!(a.bytes()[0], 42);
        assert_eq!(b.bytes()[0], 0, "snapshot view must be unaffected");
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
