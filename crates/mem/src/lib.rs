//! # lwsnap-mem — the software virtual-memory subsystem
//!
//! This crate is the memory substrate for *lightweight immutable execution
//! snapshots* (Bugnion, Chipounov, Candea — HotOS 2013). The paper builds
//! its snapshots on hardware nested paging via the Dune libOS; this crate
//! reproduces the same cost model in portable safe Rust:
//!
//! * a 48-bit guest-virtual address space managed as x86-64-shaped 4 KiB
//!   pages ([`page`]);
//! * a 4-level, 512-way **persistent** radix page table ([`radix`]) where
//!   interior nodes and frames are structurally shared between snapshots;
//! * VMAs with `mmap`/`munmap`/`mprotect`/`brk` semantics ([`region`]);
//! * a snapshottable [`AddressSpace`] with protection-checked guest
//!   accessors and supervisor (`peek`/`poke`) accessors ([`addrspace`]);
//! * observable MMU work counters ([`stats`]) so experiments can assert on
//!   *what was copied, when*.
//!
//! ## The one-line idea
//!
//! ```
//! use lwsnap_mem::{AddressSpace, Prot, RegionKind, PAGE_SIZE};
//!
//! let mut space = AddressSpace::new();
//! space.map_fixed(0x1_0000, 16 * PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "ram").unwrap();
//! space.write_u64(0x1_0000, 42).unwrap();
//!
//! let snapshot = space.snapshot();          // O(1), immutable
//! space.write_u64(0x1_0000, 99).unwrap();   // CoW: copies one page
//!
//! assert_eq!(space.read_u64(0x1_0000).unwrap(), 99);
//! assert_eq!(snapshot.clone().read_u64(0x1_0000).unwrap(), 42);
//! ```
//!
//! Snapshot cost is O(1); divergence cost is O(pages actually touched) —
//! the property every experiment in `EXPERIMENTS.md` builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addrspace;
pub mod error;
pub mod page;
pub mod radix;
pub mod region;
pub mod stats;

pub use addrspace::{AddressSpace, AsLayout, VA_LIMIT};
pub use error::{Fault, MemError};
pub use page::{page_base, page_offset, round_up_pages, vpn_of, Frame, PageBuf, PAGE_SIZE};
pub use radix::PageTable;
pub use region::{Access, Prot, Region, RegionKind, RegionMap};
pub use stats::MemStats;
