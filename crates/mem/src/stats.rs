//! Counters describing the work done by the software MMU.
//!
//! Every experiment about snapshot cost in the paper reduces to "how many
//! pages were copied, and when". [`MemStats`] makes those costs observable:
//! the benchmark harnesses assert on these counters (e.g. experiment E3:
//! copied bytes scale with pages *touched*, not address-space size).

/// Cumulative counters for one address-space handle.
///
/// Counters are plain data: cloning an address space (taking a snapshot)
/// copies the counters, so each lineage keeps its own running totals. Use
/// [`MemStats::delta`] to measure a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Pages copied because they were shared with a snapshot (CoW breaks).
    pub cow_page_copies: u64,
    /// Radix-tree interior/leaf nodes copied on the write path.
    pub node_copies: u64,
    /// Pages materialised from demand-zero.
    pub zero_fills: u64,
    /// Bytes read through the accessors.
    pub bytes_read: u64,
    /// Bytes written through the accessors.
    pub bytes_written: u64,
    /// Read accesses that missed the one-entry leaf cache.
    pub read_cache_misses: u64,
    /// Read accesses satisfied by the one-entry leaf cache.
    pub read_cache_hits: u64,
    /// Pages discarded by `unmap`/`brk` shrink.
    pub pages_discarded: u64,
}

impl MemStats {
    /// Returns a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the element-wise difference `self - earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier (any
    /// counter would underflow); in release builds the subtraction wraps.
    pub fn delta(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            cow_page_copies: self.cow_page_copies.wrapping_sub(earlier.cow_page_copies),
            node_copies: self.node_copies.wrapping_sub(earlier.node_copies),
            zero_fills: self.zero_fills.wrapping_sub(earlier.zero_fills),
            bytes_read: self.bytes_read.wrapping_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.wrapping_sub(earlier.bytes_written),
            read_cache_misses: self
                .read_cache_misses
                .wrapping_sub(earlier.read_cache_misses),
            read_cache_hits: self.read_cache_hits.wrapping_sub(earlier.read_cache_hits),
            pages_discarded: self.pages_discarded.wrapping_sub(earlier.pages_discarded),
        }
    }

    /// Total bytes physically copied by CoW breaks and zero fills.
    pub fn bytes_copied(&self) -> u64 {
        (self.cow_page_copies + self.zero_fills) * crate::page::PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = MemStats {
            cow_page_copies: 10,
            zero_fills: 4,
            ..Default::default()
        };
        let b = MemStats {
            cow_page_copies: 3,
            zero_fills: 1,
            ..Default::default()
        };
        let d = a.delta(&b);
        assert_eq!(d.cow_page_copies, 7);
        assert_eq!(d.zero_fills, 3);
    }

    #[test]
    fn bytes_copied_counts_pages() {
        let s = MemStats {
            cow_page_copies: 2,
            zero_fills: 1,
            ..Default::default()
        };
        assert_eq!(s.bytes_copied(), 3 * 4096);
    }
}
