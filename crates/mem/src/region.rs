//! Virtual memory areas (VMAs): the region map of an address space.
//!
//! A [`RegionMap`] records which guest-virtual ranges are mapped, with what
//! protection, and for what purpose. It is kept separate from the page table
//! (the radix tree of frames) exactly as a real kernel separates `vm_area`
//! structs from hardware page tables: protections and mapping existence are
//! properties of ranges, while frames exist only for pages that were touched.
//!
//! The map is snapshotted by `Arc`-cloning; region mutation first copies the
//! (small) map. Regions are half-open `[start, end)`, page-aligned.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Fault, MemError};
use crate::page::{is_page_aligned, PAGE_SIZE};

/// Kind of access being attempted, used in protection checks and faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// Page protection bits for a region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Prot(u8);

impl Prot {
    /// No access allowed (guard region).
    pub const NONE: Prot = Prot(0);
    /// Readable.
    pub const R: Prot = Prot(1);
    /// Writable.
    pub const W: Prot = Prot(2);
    /// Executable.
    pub const X: Prot = Prot(4);
    /// Read + write.
    pub const RW: Prot = Prot(1 | 2);
    /// Read + execute.
    pub const RX: Prot = Prot(1 | 4);
    /// Read + write + execute.
    pub const RWX: Prot = Prot(1 | 2 | 4);

    /// Returns the union of two protection sets.
    pub fn union(self, other: Prot) -> Prot {
        Prot(self.0 | other.0)
    }

    /// Returns `true` if this protection permits `access`.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.0 & 1 != 0,
            Access::Write => self.0 & 2 != 0,
            Access::Exec => self.0 & 4 != 0,
        }
    }

    /// Returns `true` if the region is readable.
    pub fn readable(self) -> bool {
        self.allows(Access::Read)
    }

    /// Returns `true` if the region is writable.
    pub fn writable(self) -> bool {
        self.allows(Access::Write)
    }

    /// Returns `true` if the region is executable.
    pub fn executable(self) -> bool {
        self.allows(Access::Exec)
    }
}

impl fmt::Debug for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { "r" } else { "-" },
            if self.writable() { "w" } else { "-" },
            if self.executable() { "x" } else { "-" },
        )
    }
}

/// The purpose of a mapping, for diagnostics and policy decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// Program text.
    Code,
    /// Initialised program data.
    Data,
    /// The `brk`-managed heap.
    Heap,
    /// A thread stack.
    Stack,
    /// Anonymous memory from `map_anon`.
    Anon,
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// First address of the region (page-aligned).
    pub start: u64,
    /// One past the last address (page-aligned).
    pub end: u64,
    /// Protection bits.
    pub prot: Prot,
    /// What this region is used for.
    pub kind: RegionKind,
    /// Human-readable label shown in the `maps` dump.
    pub name: Arc<str>,
}

impl Region {
    /// Length of the region in bytes.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the region is empty (never stored).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Returns `true` if `va` lies inside the region.
    pub fn contains(&self, va: u64) -> bool {
        self.start <= va && va < self.end
    }
}

/// Validates that `[start, end)` is a page-aligned, non-empty, non-wrapping
/// range, returning it back on success.
fn check_range(start: u64, len: u64) -> Result<(u64, u64), MemError> {
    if !is_page_aligned(start) {
        return Err(MemError::BadAlign { value: start });
    }
    if len == 0 || !len.is_multiple_of(PAGE_SIZE as u64) {
        return Err(MemError::BadAlign { value: len });
    }
    let end = start
        .checked_add(len)
        .ok_or(MemError::BadRange { start, end: 0 })?;
    Ok((start, end))
}

/// An ordered map of non-overlapping regions, keyed by start address.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionMap {
    map: BTreeMap<u64, Region>,
}

impl RegionMap {
    /// Creates an empty region map.
    pub fn new() -> Self {
        RegionMap {
            map: BTreeMap::new(),
        }
    }

    /// Number of distinct regions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no regions are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over regions in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.map.values()
    }

    /// Finds the region containing `va`, if any.
    pub fn find(&self, va: u64) -> Option<&Region> {
        self.map
            .range(..=va)
            .next_back()
            .map(|(_, r)| r)
            .filter(|r| r.contains(va))
    }

    /// Returns all regions overlapping `[start, end)`, in address order.
    pub fn overlapping(&self, start: u64, end: u64) -> Vec<Region> {
        let mut out = Vec::new();
        // A region beginning before `start` may still overlap it.
        if let Some(r) = self.find(start) {
            out.push(r.clone());
        }
        for (_, r) in self.map.range(start..end) {
            if out.last().map(|l: &Region| l.start) != Some(r.start) {
                out.push(r.clone());
            }
        }
        out.retain(|r| r.start < end && r.end > start);
        out
    }

    /// Inserts a new region; fails if it overlaps an existing one.
    pub fn insert(&mut self, region: Region) -> Result<(), MemError> {
        let (start, end) = check_range(region.start, region.len())?;
        if !self.overlapping(start, end).is_empty() {
            return Err(MemError::Overlap { start, end });
        }
        self.map.insert(start, region);
        Ok(())
    }

    /// Removes all mappings intersecting `[start, start+len)`, splitting
    /// partially covered regions. Returns the removed page ranges.
    ///
    /// Like `munmap(2)`, unmapping a hole is not an error.
    pub fn remove_range(&mut self, start: u64, len: u64) -> Result<Vec<(u64, u64)>, MemError> {
        let (start, end) = check_range(start, len)?;
        let affected = self.overlapping(start, end);
        let mut removed = Vec::new();
        for r in affected {
            self.map.remove(&r.start);
            let cut_start = r.start.max(start);
            let cut_end = r.end.min(end);
            removed.push((cut_start, cut_end));
            if r.start < cut_start {
                let mut left = r.clone();
                left.end = cut_start;
                self.map.insert(left.start, left);
            }
            if r.end > cut_end {
                let mut right = r.clone();
                right.start = cut_end;
                self.map.insert(right.start, right);
            }
        }
        Ok(removed)
    }

    /// Changes the protection of `[start, start+len)`, splitting regions as
    /// needed. The whole range must already be mapped (like `mprotect(2)`).
    pub fn set_prot(&mut self, start: u64, len: u64, prot: Prot) -> Result<(), MemError> {
        let (start, end) = check_range(start, len)?;
        let affected = self.overlapping(start, end);
        // Verify full coverage with no holes before mutating anything.
        let mut cursor = start;
        for r in &affected {
            if r.start > cursor {
                return Err(MemError::NotMapped { start, end });
            }
            cursor = r.end;
        }
        if cursor < end {
            return Err(MemError::NotMapped { start, end });
        }
        for r in affected {
            self.map.remove(&r.start);
            let cut_start = r.start.max(start);
            let cut_end = r.end.min(end);
            if r.start < cut_start {
                let mut left = r.clone();
                left.end = cut_start;
                self.map.insert(left.start, left);
            }
            if r.end > cut_end {
                let mut right = r.clone();
                right.start = cut_end;
                self.map.insert(right.start, right);
            }
            let mut mid = r.clone();
            mid.start = cut_start;
            mid.end = cut_end;
            mid.prot = prot;
            self.map.insert(mid.start, mid);
        }
        Ok(())
    }

    /// Grows or shrinks the region starting at `start` to end at `new_end`.
    ///
    /// Used by `brk`. Growing fails if it would collide with the next
    /// region; shrinking to emptiness removes the region.
    pub fn resize(&mut self, start: u64, new_end: u64) -> Result<(), MemError> {
        let region = self
            .map
            .get(&start)
            .cloned()
            .ok_or(MemError::NotMapped { start, end: start })?;
        if new_end < start {
            return Err(MemError::BadRange {
                start,
                end: new_end,
            });
        }
        if new_end > region.end {
            // Check for collision with the next region.
            if let Some((_, next)) = self.map.range(start + 1..).next() {
                if next.start < new_end {
                    return Err(MemError::Overlap {
                        start: region.end,
                        end: new_end,
                    });
                }
            }
        }
        if new_end == start {
            self.map.remove(&start);
        } else {
            let r = self.map.get_mut(&start).expect("region present");
            r.end = new_end;
        }
        Ok(())
    }

    /// Checks that the byte range `[va, va+len)` is mapped with a protection
    /// allowing `access`. Returns the first fault encountered otherwise.
    pub fn check(&self, va: u64, len: u64, access: Access) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let end = match va.checked_add(len) {
            Some(e) => e,
            None => return Err(Fault::NonCanonical { va }),
        };
        let mut cursor = va;
        while cursor < end {
            let region = self.find(cursor).ok_or(Fault::Unmapped { va: cursor })?;
            if !region.prot.allows(access) {
                return Err(Fault::Protection { va: cursor, access });
            }
            cursor = region.end;
        }
        Ok(())
    }

    /// Finds the lowest free gap of at least `len` bytes at or above `hint`.
    pub fn find_gap(&self, hint: u64, len: u64, limit: u64) -> Option<u64> {
        let mut candidate = hint;
        for r in self.map.values() {
            if r.end <= candidate {
                continue;
            }
            if r.start >= candidate.checked_add(len)? {
                break;
            }
            candidate = r.end;
        }
        if candidate.checked_add(len)? <= limit {
            Some(candidate)
        } else {
            None
        }
    }

    /// Renders a `/proc/<pid>/maps`-style listing.
    pub fn render_maps(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in self.map.values() {
            let _ = writeln!(
                out,
                "{:016x}-{:016x} {:?} {:?} {}",
                r.start, r.end, r.prot, r.kind, r.name
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u64, end: u64, prot: Prot) -> Region {
        Region {
            start,
            end,
            prot,
            kind: RegionKind::Anon,
            name: Arc::from("test"),
        }
    }

    #[test]
    fn prot_bits() {
        assert!(Prot::RW.readable() && Prot::RW.writable() && !Prot::RW.executable());
        assert!(Prot::RX.allows(Access::Exec));
        assert!(!Prot::NONE.allows(Access::Read));
        assert_eq!(format!("{:?}", Prot::RX), "r-x");
        assert_eq!(Prot::R.union(Prot::W), Prot::RW);
    }

    #[test]
    fn insert_and_find() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x3000, Prot::RW)).unwrap();
        assert!(m.find(0x0fff).is_none());
        assert_eq!(m.find(0x1000).unwrap().start, 0x1000);
        assert_eq!(m.find(0x2fff).unwrap().start, 0x1000);
        assert!(m.find(0x3000).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x3000, Prot::RW)).unwrap();
        let err = m.insert(region(0x2000, 0x4000, Prot::RW)).unwrap_err();
        assert_eq!(
            err,
            MemError::Overlap {
                start: 0x2000,
                end: 0x4000
            }
        );
        // Adjacent is fine.
        m.insert(region(0x3000, 0x4000, Prot::R)).unwrap();
    }

    #[test]
    fn unaligned_rejected() {
        let mut m = RegionMap::new();
        assert!(matches!(
            m.insert(region(0x1001, 0x3000, Prot::RW)),
            Err(MemError::BadAlign { .. })
        ));
    }

    #[test]
    fn remove_range_splits() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x5000, Prot::RW)).unwrap();
        let removed = m.remove_range(0x2000, 0x1000).unwrap();
        assert_eq!(removed, vec![(0x2000, 0x3000)]);
        assert_eq!(m.len(), 2);
        assert!(m.find(0x1fff).is_some());
        assert!(m.find(0x2000).is_none());
        assert!(m.find(0x2fff).is_none());
        assert!(m.find(0x3000).is_some());
        assert_eq!(m.find(0x3000).unwrap().end, 0x5000);
    }

    #[test]
    fn remove_range_hole_is_ok() {
        let mut m = RegionMap::new();
        assert!(m.remove_range(0x10_0000, 0x1000).unwrap().is_empty());
    }

    #[test]
    fn remove_spanning_multiple_regions() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::RW)).unwrap();
        m.insert(region(0x2000, 0x3000, Prot::R)).unwrap();
        m.insert(region(0x3000, 0x4000, Prot::RW)).unwrap();
        let removed = m.remove_range(0x1000, 0x3000).unwrap();
        assert_eq!(removed.len(), 3);
        assert!(m.is_empty());
    }

    #[test]
    fn set_prot_splits_three_ways() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x5000, Prot::RW)).unwrap();
        m.set_prot(0x2000, 0x1000, Prot::R).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.find(0x1000).unwrap().prot, Prot::RW);
        assert_eq!(m.find(0x2000).unwrap().prot, Prot::R);
        assert_eq!(m.find(0x3000).unwrap().prot, Prot::RW);
    }

    #[test]
    fn set_prot_requires_full_coverage() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::RW)).unwrap();
        assert!(matches!(
            m.set_prot(0x1000, 0x2000, Prot::R),
            Err(MemError::NotMapped { .. })
        ));
        // And across a hole.
        m.insert(region(0x3000, 0x4000, Prot::RW)).unwrap();
        assert!(matches!(
            m.set_prot(0x1000, 0x3000, Prot::R),
            Err(MemError::NotMapped { .. })
        ));
    }

    #[test]
    fn check_access() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::R)).unwrap();
        m.insert(region(0x2000, 0x3000, Prot::RW)).unwrap();
        assert!(m.check(0x1800, 0x1000, Access::Read).is_ok());
        assert_eq!(
            m.check(0x1800, 0x1000, Access::Write),
            Err(Fault::Protection {
                va: 0x1800,
                access: Access::Write
            })
        );
        assert_eq!(
            m.check(0x3000, 1, Access::Read),
            Err(Fault::Unmapped { va: 0x3000 })
        );
        assert_eq!(
            m.check(u64::MAX, 2, Access::Read),
            Err(Fault::NonCanonical { va: u64::MAX })
        );
        assert!(
            m.check(0x1000, 0, Access::Write).is_ok(),
            "empty access always ok"
        );
    }

    #[test]
    fn resize_grow_shrink() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::RW)).unwrap();
        m.insert(region(0x8000, 0x9000, Prot::RW)).unwrap();
        m.resize(0x1000, 0x4000).unwrap();
        assert_eq!(m.find(0x3fff).unwrap().end, 0x4000);
        m.resize(0x1000, 0x2000).unwrap();
        assert!(m.find(0x3000).is_none());
        // Growing into the next region fails.
        assert!(matches!(
            m.resize(0x1000, 0x9000),
            Err(MemError::Overlap { .. })
        ));
        // Shrinking to zero removes.
        m.resize(0x1000, 0x1000).unwrap();
        assert!(m.find(0x1000).is_none());
    }

    #[test]
    fn find_gap() {
        let mut m = RegionMap::new();
        m.insert(region(0x2000, 0x4000, Prot::RW)).unwrap();
        // Gap below the first region is usable.
        assert_eq!(m.find_gap(0x1000, 0x1000, u64::MAX), Some(0x1000));
        // A request too big for the low gap lands after the region.
        assert_eq!(m.find_gap(0x1000, 0x2000, u64::MAX), Some(0x4000));
        // Limit respected.
        assert_eq!(m.find_gap(0x1000, 0x2000, 0x5000), None);
    }

    #[test]
    fn overlapping_query() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::RW)).unwrap();
        m.insert(region(0x3000, 0x5000, Prot::R)).unwrap();
        let o = m.overlapping(0x1800, 0x3800);
        assert_eq!(o.len(), 2);
        let o = m.overlapping(0x2000, 0x3000);
        assert!(o.is_empty());
    }

    #[test]
    fn render_maps_contains_regions() {
        let mut m = RegionMap::new();
        m.insert(region(0x1000, 0x2000, Prot::RX)).unwrap();
        let dump = m.render_maps();
        assert!(dump.contains("r-x"));
        assert!(dump.contains("0000000000001000"));
    }
}
