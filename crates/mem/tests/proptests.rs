//! Property-based tests: the software MMU against a flat reference model.
//!
//! The reference model is a `HashMap<u64, u8>` (sparse byte store) plus the
//! set of mapped ranges. Any divergence between the model and the
//! `AddressSpace` under a random operation sequence is a soundness bug in
//! the page table or the region logic.

use std::collections::HashMap;

use lwsnap_mem::{AddressSpace, Prot, RegionKind, PAGE_SIZE};
use proptest::prelude::*;

const BASE: u64 = 0x10_0000;
const PAGES: u64 = 64;

/// Operations the fuzzer can apply.
#[derive(Debug, Clone)]
enum Op {
    Write { off: u64, data: Vec<u8> },
    Read { off: u64, len: usize },
    Fill { off: u64, byte: u8, len: u64 },
    Snapshot,
    RestoreLatest,
    Unmap { page: u64, pages: u64 },
    Remap { page: u64, pages: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let span = PAGES * PAGE_SIZE as u64;
    prop_oneof![
        4 => (0..span - 64, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| Op::Write { off, data }),
        3 => (0..span - 64, 1..64usize).prop_map(|(off, len)| Op::Read { off, len }),
        1 => (0..span - 9000, any::<u8>(), 1..9000u64)
            .prop_map(|(off, byte, len)| Op::Fill { off, byte, len }),
        1 => Just(Op::Snapshot),
        1 => Just(Op::RestoreLatest),
        1 => (0..PAGES, 1..4u64).prop_map(|(page, pages)| Op::Unmap { page, pages }),
        1 => (0..PAGES, 1..4u64).prop_map(|(page, pages)| Op::Remap { page, pages }),
    ]
}

/// Flat model of memory + mapping state.
#[derive(Clone, Default)]
struct Model {
    bytes: HashMap<u64, u8>,
    mapped: Vec<bool>,
}

impl Model {
    fn new() -> Self {
        Model {
            bytes: HashMap::new(),
            mapped: vec![true; PAGES as usize],
        }
    }

    fn is_mapped(&self, va: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let lo = (va - BASE) / PAGE_SIZE as u64;
        let hi = (va + len - 1 - BASE) / PAGE_SIZE as u64;
        (lo..=hi).all(|p| p < PAGES && self.mapped[p as usize])
    }

    fn read(&self, va: u64) -> u8 {
        *self.bytes.get(&va).unwrap_or(&0)
    }
}

fn apply(
    asp: &mut AddressSpace,
    model: &mut Model,
    snaps: &mut Vec<(AddressSpace, Model)>,
    op: &Op,
) {
    match op {
        Op::Write { off, data } => {
            let va = BASE + off;
            let ok = model.is_mapped(va, data.len() as u64);
            let res = asp.write_bytes(va, data);
            assert_eq!(res.is_ok(), ok, "write mapped-ness mismatch at {va:#x}");
            if ok {
                for (i, &b) in data.iter().enumerate() {
                    model.bytes.insert(va + i as u64, b);
                }
            }
        }
        Op::Read { off, len } => {
            let va = BASE + off;
            let mut buf = vec![0u8; *len];
            let ok = model.is_mapped(va, *len as u64);
            let res = asp.read_bytes(va, &mut buf);
            assert_eq!(res.is_ok(), ok, "read mapped-ness mismatch at {va:#x}");
            if ok {
                for (i, &b) in buf.iter().enumerate() {
                    assert_eq!(
                        b,
                        model.read(va + i as u64),
                        "byte mismatch at {:#x}",
                        va + i as u64
                    );
                }
            }
        }
        Op::Fill { off, byte, len } => {
            let va = BASE + off;
            let ok = model.is_mapped(va, *len);
            let res = asp.fill(va, *byte, *len);
            assert_eq!(res.is_ok(), ok, "fill mapped-ness mismatch at {va:#x}");
            if ok {
                for i in 0..*len {
                    model.bytes.insert(va + i, *byte);
                }
            }
        }
        Op::Snapshot => {
            snaps.push((asp.snapshot(), model.clone()));
        }
        Op::RestoreLatest => {
            if let Some((snap_asp, snap_model)) = snaps.last() {
                *asp = snap_asp.clone();
                *model = snap_model.clone();
            }
        }
        Op::Unmap { page, pages } => {
            let pages = (*pages).min(PAGES - page);
            let va = BASE + page * PAGE_SIZE as u64;
            let res = asp.unmap(va, pages * PAGE_SIZE as u64);
            assert!(res.is_ok(), "unmap of any sub-range must succeed: {res:?}");
            for p in *page..page + pages {
                model.mapped[p as usize] = false;
                let lo = BASE + p * PAGE_SIZE as u64;
                for a in lo..lo + PAGE_SIZE as u64 {
                    model.bytes.remove(&a);
                }
            }
        }
        Op::Remap { page, pages } => {
            let pages = (*pages).min(PAGES - page);
            let all_unmapped = (*page..page + pages).all(|p| !model.mapped[p as usize]);
            let va = BASE + page * PAGE_SIZE as u64;
            let res = asp.map_fixed(
                va,
                pages * PAGE_SIZE as u64,
                Prot::RW,
                RegionKind::Anon,
                "re",
            );
            assert_eq!(
                res.is_ok(),
                all_unmapped,
                "remap success mismatch at page {page}"
            );
            if all_unmapped {
                for p in *page..page + pages {
                    model.mapped[p as usize] = true;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences keep the MMU and the flat model in agreement,
    /// including across snapshot/restore.
    #[test]
    fn mmu_matches_flat_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut asp = AddressSpace::new();
        asp.map_fixed(BASE, PAGES * PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "ram").unwrap();
        let mut model = Model::new();
        let mut snaps = Vec::new();
        for op in &ops {
            apply(&mut asp, &mut model, &mut snaps, op);
        }
        // Post: full sweep comparison over mapped pages.
        for p in 0..PAGES {
            if !model.mapped[p as usize] {
                continue;
            }
            let va = BASE + p * PAGE_SIZE as u64;
            let mut buf = vec![0u8; PAGE_SIZE];
            asp.read_bytes(va, &mut buf).unwrap();
            for (i, &b) in buf.iter().enumerate() {
                prop_assert_eq!(b, model.read(va + i as u64));
            }
        }
    }

    /// Every snapshot taken during a random write workload still reads back
    /// exactly the bytes it saw at capture time (immutability).
    #[test]
    fn snapshots_are_immutable(
        writes in proptest::collection::vec(
            (0u64..PAGES * PAGE_SIZE as u64 - 8, any::<u64>()), 1..200),
        snap_every in 1usize..20,
    ) {
        let mut asp = AddressSpace::new();
        asp.map_fixed(BASE, PAGES * PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "ram").unwrap();
        let mut snaps: Vec<(AddressSpace, Vec<(u64, u64)>)> = Vec::new();
        let mut log: Vec<(u64, u64)> = Vec::new();
        for (i, (off, val)) in writes.iter().enumerate() {
            asp.write_u64(BASE + off, *val).unwrap();
            log.push((BASE + off, *val));
            if i % snap_every == 0 {
                snaps.push((asp.snapshot(), log.clone()));
            }
        }
        for (snap, expected_log) in snaps {
            // Replay the log into a map to get last-writer-wins expectations.
            // Overlapping unaligned writes make per-address byte tracking
            // necessary.
            let mut bytes: HashMap<u64, u8> = HashMap::new();
            for (va, val) in &expected_log {
                for (k, b) in val.to_le_bytes().iter().enumerate() {
                    bytes.insert(va + k as u64, *b);
                }
            }
            let mut snap = snap.clone();
            for (&a, &b) in &bytes {
                prop_assert_eq!(snap.read_u8(a).unwrap(), b);
            }
        }
    }

    /// CoW accounting: after a snapshot, writing k distinct pages copies at
    /// most k pages (and exactly k when all pages were materialised).
    #[test]
    fn cow_copies_bounded_by_pages_touched(k in 1u64..40) {
        let mut asp = AddressSpace::new();
        asp.map_fixed(BASE, PAGES * PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "ram").unwrap();
        for p in 0..PAGES {
            asp.write_u64(BASE + p * PAGE_SIZE as u64, p).unwrap();
        }
        let _snap = asp.snapshot();
        let before = *asp.stats();
        for p in 0..k {
            asp.write_u64(BASE + p * PAGE_SIZE as u64, 0xffff).unwrap();
        }
        let d = asp.stats().delta(&before);
        prop_assert_eq!(d.cow_page_copies, k);
        prop_assert_eq!(d.zero_fills, 0);
    }
}
