//! Property tests: CoW file data against a flat `Vec<u8>` model, and
//! snapshot isolation of whole views under random operation sequences.

use lwsnap_fs::{FileData, FsView, OpenFlags, O_CREAT, O_RDWR};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum FileOp {
    Write { at: u64, data: Vec<u8> },
    Truncate { len: u64 },
    Snapshot,
    Restore,
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        4 => (0u64..20_000, proptest::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(at, data)| FileOp::Write { at, data }),
        2 => (0u64..25_000).prop_map(|len| FileOp::Truncate { len }),
        1 => Just(FileOp::Snapshot),
        1 => Just(FileOp::Restore),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// FileData behaves exactly like a growable Vec<u8> with zero fill,
    /// including across snapshot/restore.
    #[test]
    fn file_data_matches_vec_model(ops in proptest::collection::vec(file_op(), 1..60)) {
        let mut file = FileData::new();
        let mut model: Vec<u8> = Vec::new();
        let mut snaps: Vec<(FileData, Vec<u8>)> = Vec::new();
        for op in ops {
            match op {
                FileOp::Write { at, data } => {
                    file.write_at(at, &data);
                    let end = at as usize + data.len();
                    if model.len() < end {
                        model.resize(end, 0);
                    }
                    model[at as usize..end].copy_from_slice(&data);
                }
                FileOp::Truncate { len } => {
                    file.truncate(len);
                    model.resize(len as usize, 0);
                }
                FileOp::Snapshot => snaps.push((file.clone(), model.clone())),
                FileOp::Restore => {
                    if let Some((f, m)) = snaps.last() {
                        file = f.clone();
                        model = m.clone();
                    }
                }
            }
            prop_assert_eq!(file.len(), model.len() as u64);
        }
        prop_assert_eq!(file.to_vec(), model);
        // Every snapshot is still intact.
        for (f, m) in &snaps {
            prop_assert_eq!(f.to_vec(), m.clone());
        }
    }

    /// Reads at arbitrary offsets agree with the model.
    #[test]
    fn reads_agree_with_model(
        writes in proptest::collection::vec(
            (0u64..5000, proptest::collection::vec(any::<u8>(), 1..100)), 1..20),
        read_at in 0u64..6000,
        read_len in 1usize..200,
    ) {
        let mut file = FileData::new();
        let mut model: Vec<u8> = Vec::new();
        for (at, data) in &writes {
            file.write_at(*at, data);
            let end = *at as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[*at as usize..end].copy_from_slice(data);
        }
        let mut buf = vec![0u8; read_len];
        let n = file.read_at(read_at, &mut buf);
        let expected: &[u8] = if (read_at as usize) < model.len() {
            &model[read_at as usize..(read_at as usize + read_len).min(model.len())]
        } else {
            &[]
        };
        prop_assert_eq!(&buf[..n], expected);
    }

    /// A forked FsView's fd offsets, file contents, and new files never
    /// leak into the snapshot it forked from.
    #[test]
    fn view_fork_isolation(
        branch_writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..50), 1..5),
    ) {
        let mut base = FsView::default();
        base.volume_mut().write_file("/shared", b"original").unwrap();
        let fd = base.open("/shared", OpenFlags::from_bits(O_RDWR)).unwrap();
        let snap = base.clone();

        // Each branch is a fresh clone of the snapshot and scribbles.
        for (i, data) in branch_writes.iter().enumerate() {
            let mut branch = snap.clone();
            branch.write(fd, data).unwrap();
            let new_path = format!("/branch_{i}");
            branch.volume_mut().write_file(&new_path, data).unwrap();
            branch.write(1, b"noise").unwrap();
            // Verify the branch's own view.
            prop_assert!(branch.volume().read_file(&new_path).is_ok());
        }

        // The snapshot never changed.
        prop_assert_eq!(snap.volume().read_file("/shared").unwrap(), b"original");
        prop_assert!(snap.stdout_bytes().is_empty());
        prop_assert_eq!(snap.volume().readdir("/").unwrap().len(), 1);
        // And its fd offset is still at 0.
        let mut check = snap.clone();
        let mut buf = [0u8; 8];
        prop_assert_eq!(check.read(fd, &mut buf).unwrap(), 8);
        prop_assert_eq!(&buf, b"original");
    }

    /// Open-create-write-read cycles round-trip arbitrary content.
    #[test]
    fn open_write_read_roundtrip(content in proptest::collection::vec(any::<u8>(), 0..5000)) {
        let mut view = FsView::default();
        let fd = view.open("/f", OpenFlags::from_bits(O_RDWR | O_CREAT)).unwrap();
        view.write(fd, &content).unwrap();
        view.lseek(fd, 0, lwsnap_fs::SEEK_SET).unwrap();
        let mut back = vec![0u8; content.len() + 16];
        let mut got = Vec::new();
        loop {
            let n = view.read(fd, &mut back).unwrap();
            if n == 0 {
                break;
            }
            got.extend_from_slice(&back[..n]);
        }
        prop_assert_eq!(got, content);
    }
}
