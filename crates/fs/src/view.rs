//! Per-execution filesystem views: fd tables and contained console output.
//!
//! An [`FsView`] is the file-side half of an execution snapshot: the volume,
//! the open-file-descriptor table, and the console buffers all clone in
//! O(1)-ish and diverge copy-on-write. A candidate extension step that
//! writes to a file or to stdout mutates *its* view only; discarding the
//! step (backtracking) discards the side effects — the containment property
//! the paper's interposition layer provides.

use std::sync::Arc;

use crate::data::FileData;
use crate::error::FsError;
use crate::volume::{FileKind, InodeId, Metadata, Volume};

/// Open-for-reading flag (`O_RDONLY`/`O_RDWR`).
pub const O_RDONLY: u32 = 0o0;
/// Open-for-writing flag (`O_WRONLY`).
pub const O_WRONLY: u32 = 0o1;
/// Open for reading and writing.
pub const O_RDWR: u32 = 0o2;
/// Create the file if it does not exist.
pub const O_CREAT: u32 = 0o100;
/// With `O_CREAT`, fail if the file exists.
pub const O_EXCL: u32 = 0o200;
/// Truncate the file on open.
pub const O_TRUNC: u32 = 0o1000;
/// All writes append to the end of the file.
pub const O_APPEND: u32 = 0o2000;

/// `lseek` whence: absolute offset.
pub const SEEK_SET: u32 = 0;
/// `lseek` whence: relative to current position.
pub const SEEK_CUR: u32 = 1;
/// `lseek` whence: relative to end of file.
pub const SEEK_END: u32 = 2;

/// Decoded open flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenFlags {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Create if missing.
    pub create: bool,
    /// Fail if it already exists (with `create`).
    pub excl: bool,
    /// Truncate on open.
    pub trunc: bool,
    /// Append mode.
    pub append: bool,
}

impl OpenFlags {
    /// Decodes Linux-style numeric open flags.
    pub fn from_bits(bits: u32) -> OpenFlags {
        let acc = bits & 0o3;
        OpenFlags {
            read: acc == O_RDONLY || acc == O_RDWR,
            write: acc == O_WRONLY || acc == O_RDWR,
            create: bits & O_CREAT != 0,
            excl: bits & O_EXCL != 0,
            trunc: bits & O_TRUNC != 0,
            append: bits & O_APPEND != 0,
        }
    }

    /// Read-only flags.
    pub fn read_only() -> OpenFlags {
        OpenFlags::from_bits(O_RDONLY)
    }

    /// Write-only + create + truncate (like `creat(2)`).
    pub fn write_create() -> OpenFlags {
        OpenFlags::from_bits(O_WRONLY | O_CREAT | O_TRUNC)
    }
}

#[derive(Clone)]
enum FdEntry {
    File {
        inode: InodeId,
        offset: u64,
        flags: OpenFlags,
    },
    Stdin,
    Stdout,
    Stderr,
}

/// A snapshot-friendly byte buffer for captured console output.
#[derive(Clone, Default)]
struct ConsoleBuf(Arc<Vec<u8>>);

impl ConsoleBuf {
    fn push(&mut self, data: &[u8]) {
        Arc::make_mut(&mut self.0).extend_from_slice(data);
    }

    fn bytes(&self) -> &[u8] {
        &self.0
    }
}

/// The filesystem state of one execution branch.
///
/// Cloning an `FsView` is the file-side snapshot operation.
#[derive(Clone)]
pub struct FsView {
    vol: Volume,
    /// Shared until mutated: snapshot clones are pure refcount bumps.
    fds: Arc<Vec<Option<FdEntry>>>,
    stdout: ConsoleBuf,
    stderr: ConsoleBuf,
}

impl Default for FsView {
    fn default() -> Self {
        Self::new(Volume::new())
    }
}

impl FsView {
    /// Creates a view of `vol` with fds 0/1/2 preopened as console streams.
    pub fn new(vol: Volume) -> Self {
        FsView {
            vol,
            fds: Arc::new(vec![
                Some(FdEntry::Stdin),
                Some(FdEntry::Stdout),
                Some(FdEntry::Stderr),
            ]),
            stdout: ConsoleBuf::default(),
            stderr: ConsoleBuf::default(),
        }
    }

    /// The underlying volume (read access).
    pub fn volume(&self) -> &Volume {
        &self.vol
    }

    /// The underlying volume (mutable access, e.g. for test setup).
    pub fn volume_mut(&mut self) -> &mut Volume {
        &mut self.vol
    }

    /// Console output captured by this branch so far.
    pub fn stdout_bytes(&self) -> &[u8] {
        self.stdout.bytes()
    }

    /// Stderr output captured by this branch so far.
    pub fn stderr_bytes(&self) -> &[u8] {
        self.stderr.bytes()
    }

    /// Number of open descriptors (diagnostics).
    pub fn open_fd_count(&self) -> usize {
        self.fds.iter().filter(|fd| fd.is_some()).count()
    }

    fn alloc_fd(&mut self, entry: FdEntry) -> u32 {
        let fds = Arc::make_mut(&mut self.fds);
        for (i, slot) in fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i as u32;
            }
        }
        fds.push(Some(entry));
        (fds.len() - 1) as u32
    }

    fn entry(&self, fd: u32) -> Result<&FdEntry, FsError> {
        self.fds
            .get(fd as usize)
            .and_then(Option::as_ref)
            .ok_or(FsError::BadFd)
    }

    fn entry_mut(&mut self, fd: u32) -> Result<&mut FdEntry, FsError> {
        Arc::make_mut(&mut self.fds)
            .get_mut(fd as usize)
            .and_then(Option::as_mut)
            .ok_or(FsError::BadFd)
    }

    /// Opens `path` with `flags`, returning the new fd.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> Result<u32, FsError> {
        let inode = if flags.create {
            self.vol.create_file(path, flags.excl)?
        } else {
            let id = self.vol.resolve(path)?;
            if self.vol.stat_inode(id)?.kind == FileKind::Dir && flags.write {
                return Err(FsError::IsDir);
            }
            id
        };
        if self.vol.stat_inode(inode)?.kind == FileKind::Dir {
            return Err(FsError::IsDir);
        }
        if flags.trunc && flags.write {
            self.vol.with_file_mut(inode, |d| d.truncate(0))?;
        }
        Ok(self.alloc_fd(FdEntry::File {
            inode,
            offset: 0,
            flags,
        }))
    }

    /// Closes `fd`.
    pub fn close(&mut self, fd: u32) -> Result<(), FsError> {
        let slot = Arc::make_mut(&mut self.fds)
            .get_mut(fd as usize)
            .ok_or(FsError::BadFd)?;
        if slot.is_none() {
            return Err(FsError::BadFd);
        }
        *slot = None;
        Ok(())
    }

    /// Duplicates `fd` to the lowest free descriptor.
    pub fn dup(&mut self, fd: u32) -> Result<u32, FsError> {
        let entry = self.entry(fd)?.clone();
        Ok(self.alloc_fd(entry))
    }

    /// Reads from `fd` into `buf`; returns bytes read (0 = EOF).
    pub fn read(&mut self, fd: u32, buf: &mut [u8]) -> Result<usize, FsError> {
        let vol = self.vol.clone();
        match self.entry_mut(fd)? {
            FdEntry::File {
                inode,
                offset,
                flags,
            } => {
                if !flags.read {
                    return Err(FsError::Access);
                }
                let n = vol.with_file(*inode, |d| d.read_at(*offset, buf))?;
                *offset += n as u64;
                Ok(n)
            }
            FdEntry::Stdin => Ok(0),
            FdEntry::Stdout | FdEntry::Stderr => Err(FsError::Access),
        }
    }

    /// Writes `data` to `fd`; returns bytes written.
    pub fn write(&mut self, fd: u32, data: &[u8]) -> Result<usize, FsError> {
        match self.entry(fd)? {
            FdEntry::File {
                inode,
                offset,
                flags,
            } => {
                if !flags.write {
                    return Err(FsError::Access);
                }
                let (inode, flags) = (*inode, *flags);
                let pos = if flags.append {
                    self.vol.with_file(inode, FileData::len)?
                } else {
                    *offset
                };
                self.vol.with_file_mut(inode, |d| d.write_at(pos, data))?;
                if let FdEntry::File { offset, .. } = self.entry_mut(fd)? {
                    *offset = pos + data.len() as u64;
                }
                Ok(data.len())
            }
            FdEntry::Stdout => {
                self.stdout.push(data);
                Ok(data.len())
            }
            FdEntry::Stderr => {
                self.stderr.push(data);
                Ok(data.len())
            }
            FdEntry::Stdin => Err(FsError::Access),
        }
    }

    /// Repositions the offset of `fd`; returns the new offset.
    pub fn lseek(&mut self, fd: u32, off: i64, whence: u32) -> Result<u64, FsError> {
        let vol = self.vol.clone();
        match self.entry_mut(fd)? {
            FdEntry::File { inode, offset, .. } => {
                let base: i64 = match whence {
                    SEEK_SET => 0,
                    SEEK_CUR => *offset as i64,
                    SEEK_END => vol.with_file(*inode, FileData::len)? as i64,
                    _ => return Err(FsError::Inval),
                };
                let target = base.checked_add(off).ok_or(FsError::Inval)?;
                if target < 0 {
                    return Err(FsError::BadSeek);
                }
                *offset = target as u64;
                Ok(*offset)
            }
            _ => Err(FsError::BadSeek),
        }
    }

    /// Returns metadata for the object behind `fd`.
    pub fn fstat(&self, fd: u32) -> Result<Metadata, FsError> {
        match self.entry(fd)? {
            FdEntry::File { inode, .. } => self.vol.stat_inode(*inode),
            // Console streams report as zero-length files.
            _ => Ok(Metadata {
                inode: u32::MAX,
                kind: FileKind::File,
                len: 0,
            }),
        }
    }

    /// Truncates the file behind `fd` to `len`.
    pub fn ftruncate(&mut self, fd: u32, len: u64) -> Result<(), FsError> {
        match self.entry(fd)? {
            FdEntry::File { inode, flags, .. } => {
                if !flags.write {
                    return Err(FsError::Access);
                }
                let inode = *inode;
                self.vol.with_file_mut(inode, |d| d.truncate(len))
            }
            _ => Err(FsError::Inval),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with(path: &str, content: &[u8]) -> FsView {
        let mut vol = Volume::new();
        vol.write_file(path, content).unwrap();
        FsView::new(vol)
    }

    #[test]
    fn open_read_sequential() {
        let mut v = view_with("/f", b"abcdef");
        let fd = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(fd, 3, "first free fd after std streams");
        let mut buf = [0u8; 4];
        assert_eq!(v.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"abcd");
        assert_eq!(v.read(fd, &mut buf).unwrap(), 2);
        assert_eq!(&buf[..2], b"ef");
        assert_eq!(v.read(fd, &mut buf).unwrap(), 0, "EOF");
        v.close(fd).unwrap();
        assert!(v.read(fd, &mut buf).is_err());
    }

    #[test]
    fn write_modes() {
        let mut v = view_with("/f", b"12345");
        // Read-only fd refuses writes.
        let ro = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(v.write(ro, b"x"), Err(FsError::Access));
        // O_TRUNC clears.
        let w = v.open("/f", OpenFlags::write_create()).unwrap();
        v.write(w, b"ab").unwrap();
        assert_eq!(v.volume().read_file("/f").unwrap(), b"ab");
        // Write-only fd refuses reads.
        let mut buf = [0u8; 1];
        assert_eq!(v.read(w, &mut buf), Err(FsError::Access));
        // O_APPEND always writes at the end.
        let a = v
            .open("/f", OpenFlags::from_bits(O_WRONLY | O_APPEND))
            .unwrap();
        v.lseek(a, 0, SEEK_SET).unwrap();
        v.write(a, b"cd").unwrap();
        assert_eq!(v.volume().read_file("/f").unwrap(), b"abcd");
    }

    #[test]
    fn o_creat_and_excl() {
        let mut v = FsView::default();
        let fd = v
            .open("/new", OpenFlags::from_bits(O_WRONLY | O_CREAT | O_EXCL))
            .unwrap();
        v.write(fd, b"x").unwrap();
        assert_eq!(
            v.open("/new", OpenFlags::from_bits(O_WRONLY | O_CREAT | O_EXCL)),
            Err(FsError::Exists)
        );
        assert!(v.open("/missing", OpenFlags::read_only()).is_err());
    }

    #[test]
    fn lseek_whences() {
        let mut v = view_with("/f", b"0123456789");
        let fd = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(v.lseek(fd, 4, SEEK_SET).unwrap(), 4);
        assert_eq!(v.lseek(fd, 2, SEEK_CUR).unwrap(), 6);
        assert_eq!(v.lseek(fd, -1, SEEK_END).unwrap(), 9);
        let mut b = [0u8; 1];
        v.read(fd, &mut b).unwrap();
        assert_eq!(&b, b"9");
        assert_eq!(v.lseek(fd, -100, SEEK_SET), Err(FsError::BadSeek));
        assert_eq!(v.lseek(fd, 0, 99), Err(FsError::Inval));
        // Seeking a console stream is ESPIPE.
        assert_eq!(v.lseek(1, 0, SEEK_SET), Err(FsError::BadSeek));
    }

    #[test]
    fn console_capture() {
        let mut v = FsView::default();
        v.write(1, b"out").unwrap();
        v.write(2, b"err").unwrap();
        assert_eq!(v.stdout_bytes(), b"out");
        assert_eq!(v.stderr_bytes(), b"err");
        // Stdin reads EOF, writes fail.
        let mut b = [0u8; 4];
        assert_eq!(v.read(0, &mut b).unwrap(), 0);
        assert_eq!(v.write(0, b"x"), Err(FsError::Access));
    }

    #[test]
    fn snapshot_contains_side_effects() {
        let mut v = view_with("/f", b"base");
        let fd = v.open("/f", OpenFlags::from_bits(O_RDWR)).unwrap();
        v.write(1, b"before|").unwrap();
        let snap = v.clone();

        // The branch scribbles on the file, console, and fd offset...
        v.write(fd, b"MUTATED").unwrap();
        v.write(1, b"during|").unwrap();
        let g = v.open("/g", OpenFlags::write_create()).unwrap();
        v.write(g, b"new file").unwrap();

        // ...but the snapshot view is untouched.
        assert_eq!(snap.volume().read_file("/f").unwrap(), b"base");
        assert_eq!(snap.stdout_bytes(), b"before|");
        assert!(snap.volume().resolve("/g").is_err());

        // Restoring = cloning the snapshot again; fd offsets roll back too.
        let mut restored = snap.clone();
        let mut buf = [0u8; 4];
        assert_eq!(restored.read(fd, &mut buf).unwrap(), 4);
        assert_eq!(&buf, b"base");
    }

    #[test]
    fn dup_shares_entry_snapshot_style() {
        let mut v = view_with("/f", b"abc");
        let fd = v.open("/f", OpenFlags::read_only()).unwrap();
        let d = v.dup(fd).unwrap();
        assert_ne!(fd, d);
        // Offsets are per-entry (dup copies the entry in this model).
        let mut b = [0u8; 1];
        v.read(fd, &mut b).unwrap();
        v.read(d, &mut b).unwrap();
        assert_eq!(&b, b"a", "dup'd fd has its own offset in this model");
    }

    #[test]
    fn fstat_and_ftruncate() {
        let mut v = view_with("/f", b"hello");
        let fd = v.open("/f", OpenFlags::from_bits(O_RDWR)).unwrap();
        assert_eq!(v.fstat(fd).unwrap().len, 5);
        v.ftruncate(fd, 2).unwrap();
        assert_eq!(v.fstat(fd).unwrap().len, 2);
        let ro = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(v.ftruncate(ro, 0), Err(FsError::Access));
        assert!(v.fstat(1).unwrap().len == 0);
    }

    #[test]
    fn fd_reuse_lowest_first() {
        let mut v = view_with("/f", b"x");
        let a = v.open("/f", OpenFlags::read_only()).unwrap();
        let b = v.open("/f", OpenFlags::read_only()).unwrap();
        v.close(a).unwrap();
        let c = v.open("/f", OpenFlags::read_only()).unwrap();
        assert_eq!(c, a, "lowest free fd is reused");
        assert_ne!(b, c);
        assert_eq!(v.open_fd_count(), 5);
    }

    #[test]
    fn opening_directory_for_write_fails() {
        let mut v = FsView::default();
        v.volume_mut().mkdir("/d").unwrap();
        assert_eq!(
            v.open("/d", OpenFlags::from_bits(O_WRONLY)),
            Err(FsError::IsDir)
        );
        assert_eq!(v.open("/d", OpenFlags::read_only()), Err(FsError::IsDir));
    }
}
