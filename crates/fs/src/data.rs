//! Copy-on-write file contents, chunked at page granularity.
//!
//! File bytes are stored in 4 KiB chunks shared by `Arc`, exactly like the
//! memory subsystem's frames: cloning a [`FileData`] is O(chunks) pointer
//! copies (no byte copies), and a write after a snapshot copies only the
//! touched chunk. This gives the paper's "immutable logical copy of open
//! disk files" the same cost model as the address space.

use std::sync::Arc;

/// Chunk size in bytes (matches the MMU page size).
pub const CHUNK_SIZE: usize = 4096;

type Chunk = Arc<[u8; CHUNK_SIZE]>;

fn zero_chunk() -> Chunk {
    Arc::new([0u8; CHUNK_SIZE])
}

/// CoW byte storage for one regular file.
#[derive(Clone, Default)]
pub struct FileData {
    chunks: Vec<Chunk>,
    len: u64,
}

impl FileData {
    /// Creates an empty file.
    pub fn new() -> Self {
        FileData::default()
    }

    /// Creates a file holding `bytes`.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut data = FileData::new();
        data.write_at(0, bytes);
        data
    }

    /// Current file length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Returns `true` if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Truncates (or, with a larger `len`, zero-extends) the file.
    pub fn truncate(&mut self, len: u64) {
        let need_chunks = (len as usize).div_ceil(CHUNK_SIZE);
        if len < self.len {
            self.chunks.truncate(need_chunks);
            // Zero the tail of the final partial chunk so later extension
            // reads back zeroes, like a real truncate.
            let tail = (len as usize) % CHUNK_SIZE;
            if tail != 0 {
                if let Some(last) = self.chunks.last_mut() {
                    Arc::make_mut(last)[tail..].fill(0);
                }
            }
        } else {
            self.chunks.resize_with(need_chunks, zero_chunk);
        }
        self.len = len;
    }

    /// Reads at most `buf.len()` bytes at `offset`; returns bytes read.
    ///
    /// Reads past the end of file return 0 (EOF), matching `pread(2)`.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) -> usize {
        if offset >= self.len {
            return 0;
        }
        let n = (buf.len() as u64).min(self.len - offset) as usize;
        let mut done = 0usize;
        while done < n {
            let pos = offset as usize + done;
            let ci = pos / CHUNK_SIZE;
            let co = pos % CHUNK_SIZE;
            let take = (CHUNK_SIZE - co).min(n - done);
            match self.chunks.get(ci) {
                Some(chunk) => buf[done..done + take].copy_from_slice(&chunk[co..co + take]),
                None => buf[done..done + take].fill(0),
            }
            done += take;
        }
        n
    }

    /// Writes `data` at `offset`, growing the file as needed.
    ///
    /// Holes created by writing past EOF read back as zeroes.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let end = offset + data.len() as u64;
        let need_chunks = (end as usize).div_ceil(CHUNK_SIZE);
        if self.chunks.len() < need_chunks {
            self.chunks.resize_with(need_chunks, zero_chunk);
        }
        let mut done = 0usize;
        while done < data.len() {
            let pos = offset as usize + done;
            let ci = pos / CHUNK_SIZE;
            let co = pos % CHUNK_SIZE;
            let take = (CHUNK_SIZE - co).min(data.len() - done);
            let chunk = Arc::make_mut(&mut self.chunks[ci]);
            chunk[co..co + take].copy_from_slice(&data[done..done + take]);
            done += take;
        }
        self.len = self.len.max(end);
    }

    /// Returns the whole file as a vector (test/diagnostic helper).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len as usize];
        self.read_at(0, &mut out);
        out
    }

    /// Number of chunks physically shared with `other` at equal indices.
    pub fn shared_chunks_with(&self, other: &FileData) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_file_reads_nothing() {
        let f = FileData::new();
        let mut buf = [0u8; 8];
        assert_eq!(f.read_at(0, &mut buf), 0);
        assert_eq!(f.len(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut f = FileData::new();
        f.write_at(0, b"hello world");
        assert_eq!(f.len(), 11);
        assert_eq!(f.to_vec(), b"hello world");
        let mut buf = [0u8; 5];
        assert_eq!(f.read_at(6, &mut buf), 5);
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn read_clamped_at_eof() {
        let f = FileData::from_bytes(b"abc");
        let mut buf = [0u8; 10];
        assert_eq!(f.read_at(1, &mut buf), 2);
        assert_eq!(&buf[..2], b"bc");
        assert_eq!(f.read_at(3, &mut buf), 0);
        assert_eq!(f.read_at(100, &mut buf), 0);
    }

    #[test]
    fn sparse_write_reads_zero_holes() {
        let mut f = FileData::new();
        f.write_at(10_000, b"x");
        assert_eq!(f.len(), 10_001);
        let mut buf = [0xffu8; 4];
        f.read_at(5000, &mut buf);
        assert_eq!(buf, [0, 0, 0, 0]);
        let mut b = [0u8; 1];
        f.read_at(10_000, &mut b);
        assert_eq!(&b, b"x");
    }

    #[test]
    fn write_spanning_chunks() {
        let mut f = FileData::new();
        let data: Vec<u8> = (0..3 * CHUNK_SIZE).map(|i| (i % 251) as u8).collect();
        f.write_at(CHUNK_SIZE as u64 - 7, &data);
        assert_eq!(f.to_vec()[CHUNK_SIZE - 7..], data[..]);
    }

    #[test]
    fn clone_shares_then_cow_diverges() {
        let mut f = FileData::new();
        f.write_at(0, &vec![1u8; 3 * CHUNK_SIZE]);
        let snap = f.clone();
        assert_eq!(f.shared_chunks_with(&snap), 3);
        f.write_at(0, b"!");
        assert_eq!(
            f.shared_chunks_with(&snap),
            2,
            "only the touched chunk copied"
        );
        assert_eq!(snap.to_vec()[0], 1, "snapshot unchanged");
        assert_eq!(f.to_vec()[0], b'!');
    }

    #[test]
    fn truncate_shrink_zeroes_tail() {
        let mut f = FileData::from_bytes(&[0xaau8; 100]);
        f.truncate(50);
        assert_eq!(f.len(), 50);
        // Extending again must read zeroes past 50.
        f.truncate(100);
        let v = f.to_vec();
        assert!(v[..50].iter().all(|&b| b == 0xaa));
        assert!(v[50..].iter().all(|&b| b == 0));
    }

    #[test]
    fn truncate_extend_is_sparse_zero() {
        let mut f = FileData::from_bytes(b"ab");
        f.truncate(CHUNK_SIZE as u64 * 2);
        assert_eq!(f.len(), CHUNK_SIZE as u64 * 2);
        let v = f.to_vec();
        assert_eq!(&v[..2], b"ab");
        assert!(v[2..].iter().all(|&b| b == 0));
    }

    #[test]
    fn truncate_does_not_disturb_snapshot() {
        let mut f = FileData::from_bytes(&vec![7u8; CHUNK_SIZE + 10]);
        let snap = f.clone();
        f.truncate(3);
        assert_eq!(snap.len(), CHUNK_SIZE as u64 + 10);
        assert!(snap.to_vec().iter().all(|&b| b == 7));
    }
}
