//! # lwsnap-fs — snapshot-aware in-memory filesystem
//!
//! The file-side substrate for lightweight immutable execution snapshots
//! (HotOS 2013). The paper's snapshots include "a logical copy of open disk
//! files", and its interposition layer must contain every file side effect
//! inside the extension step that caused it. This crate provides exactly
//! that:
//!
//! * [`FileData`] — CoW file contents chunked at page granularity;
//! * [`Volume`] — inodes, directories, path resolution (`open`/`unlink`/
//!   `mkdir`/`readdir` family);
//! * [`FsView`] — the per-branch view: volume + fd table + captured console
//!   output. **Cloning an `FsView` is the file half of taking a snapshot**;
//!   all mutation after the clone is copy-on-write.
//!
//! ```
//! use lwsnap_fs::{FsView, OpenFlags};
//!
//! let mut view = FsView::default();
//! view.volume_mut().write_file("/data", b"parent state").unwrap();
//!
//! let snapshot = view.clone();               // O(1) file-state snapshot
//! view.volume_mut().write_file("/data", b"child scribbles").unwrap();
//! view.write(1, b"side effect on stdout").unwrap();
//!
//! // Backtracking = dropping the mutated view; the snapshot is pristine.
//! assert_eq!(snapshot.volume().read_file("/data").unwrap(), b"parent state");
//! assert!(snapshot.stdout_bytes().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data;
pub mod error;
pub mod view;
pub mod volume;

pub use data::{FileData, CHUNK_SIZE};
pub use error::FsError;
pub use view::{
    FsView, OpenFlags, O_APPEND, O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY, SEEK_CUR,
    SEEK_END, SEEK_SET,
};
pub use volume::{FileKind, InodeId, Metadata, Volume, ROOT_INODE};
