//! Filesystem error type with Linux-style errno mapping.

use core::fmt;

/// Errors returned by filesystem operations.
///
/// The variants mirror the errno values the syscall interposition layer
/// reports to guests ([`FsError::errno`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path component or file does not exist.
    NoEnt,
    /// The path names a directory where a file was required.
    IsDir,
    /// A non-final path component is not a directory.
    NotDir,
    /// The target already exists (`O_CREAT|O_EXCL`, `mkdir`).
    Exists,
    /// File descriptor is not open.
    BadFd,
    /// Operation not permitted by the open mode (e.g. write on `O_RDONLY`).
    Access,
    /// Malformed path or name (empty component, embedded NUL, ...).
    Inval,
    /// Directory not empty (`rmdir`).
    NotEmpty,
    /// Seek before the start of the file.
    BadSeek,
    /// The operation is refused by the encapsulation policy (paper §5:
    /// interposition is sound-but-incomplete; unsupported classes fail).
    NotSup,
}

impl FsError {
    /// Linux errno value delivered to guests.
    pub fn errno(self) -> i64 {
        match self {
            FsError::NoEnt => 2,     // ENOENT
            FsError::IsDir => 21,    // EISDIR
            FsError::NotDir => 20,   // ENOTDIR
            FsError::Exists => 17,   // EEXIST
            FsError::BadFd => 9,     // EBADF
            FsError::Access => 13,   // EACCES
            FsError::Inval => 22,    // EINVAL
            FsError::NotEmpty => 39, // ENOTEMPTY
            FsError::BadSeek => 29,  // ESPIPE
            FsError::NotSup => 95,   // EOPNOTSUPP
        }
    }
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FsError::NoEnt => "no such file or directory",
            FsError::IsDir => "is a directory",
            FsError::NotDir => "not a directory",
            FsError::Exists => "file exists",
            FsError::BadFd => "bad file descriptor",
            FsError::Access => "permission denied",
            FsError::Inval => "invalid argument",
            FsError::NotEmpty => "directory not empty",
            FsError::BadSeek => "illegal seek",
            FsError::NotSup => "operation not supported by encapsulation policy",
        };
        f.write_str(name)
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errno_values_match_linux() {
        assert_eq!(FsError::NoEnt.errno(), 2);
        assert_eq!(FsError::BadFd.errno(), 9);
        assert_eq!(FsError::NotSup.errno(), 95);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(FsError::NoEnt.to_string(), "no such file or directory");
    }
}
