//! The volume: inode table, directories, and path resolution.
//!
//! A [`Volume`] is a complete in-memory filesystem image. Cloning one is
//! O(1); the first structural mutation after a clone copies the (small)
//! inode table, and file *contents* stay chunk-shared via [`FileData`].
//! This is what lets an execution snapshot include "immutable files" at
//! negligible cost.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::data::FileData;
use crate::error::FsError;

/// Index into the volume's inode table.
pub type InodeId = u32;

/// The root directory's inode id.
pub const ROOT_INODE: InodeId = 0;

/// What kind of object an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Regular file.
    File,
    /// Directory.
    Dir,
}

/// Metadata returned by `stat`-like operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    /// Inode number.
    pub inode: InodeId,
    /// File or directory.
    pub kind: FileKind,
    /// Length in bytes (0 for directories).
    pub len: u64,
}

#[derive(Clone)]
enum Inode {
    File(FileData),
    Dir(BTreeMap<String, InodeId>),
}

#[derive(Clone, Default)]
struct VolInner {
    table: Vec<Option<Arc<Inode>>>,
    free: Vec<InodeId>,
}

/// A snapshot-friendly in-memory filesystem volume.
#[derive(Clone)]
pub struct Volume {
    inner: Arc<VolInner>,
}

impl Default for Volume {
    fn default() -> Self {
        Self::new()
    }
}

fn validate_name(name: &str) -> Result<(), FsError> {
    if name.is_empty() || name.contains('\0') || name.contains('/') {
        return Err(FsError::Inval);
    }
    Ok(())
}

/// Splits an absolute path into normalised components, applying `.`/`..`.
fn components(path: &str) -> Result<Vec<&str>, FsError> {
    if !path.starts_with('/') || path.contains('\0') {
        return Err(FsError::Inval);
    }
    let mut out: Vec<&str> = Vec::new();
    for part in path.split('/') {
        match part {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            name => out.push(name),
        }
    }
    Ok(out)
}

impl Volume {
    /// Creates an empty volume containing only the root directory.
    pub fn new() -> Self {
        let inner = VolInner {
            table: vec![Some(Arc::new(Inode::Dir(BTreeMap::new())))],
            free: Vec::new(),
        };
        Volume {
            inner: Arc::new(inner),
        }
    }

    fn get(&self, id: InodeId) -> Result<&Arc<Inode>, FsError> {
        self.inner
            .table
            .get(id as usize)
            .and_then(Option::as_ref)
            .ok_or(FsError::NoEnt)
    }

    fn inner_mut(&mut self) -> &mut VolInner {
        Arc::make_mut(&mut self.inner)
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        let inner = self.inner_mut();
        if let Some(id) = inner.free.pop() {
            inner.table[id as usize] = Some(Arc::new(inode));
            id
        } else {
            inner.table.push(Some(Arc::new(inode)));
            (inner.table.len() - 1) as InodeId
        }
    }

    fn release(&mut self, id: InodeId) {
        let inner = self.inner_mut();
        inner.table[id as usize] = None;
        inner.free.push(id);
    }

    /// Resolves `path` to an inode id.
    pub fn resolve(&self, path: &str) -> Result<InodeId, FsError> {
        let comps = components(path)?;
        let mut cur = ROOT_INODE;
        for name in comps {
            match &**self.get(cur)? {
                Inode::Dir(entries) => {
                    cur = *entries.get(name).ok_or(FsError::NoEnt)?;
                }
                Inode::File(_) => return Err(FsError::NotDir),
            }
        }
        Ok(cur)
    }

    /// Resolves all but the last component; returns `(dir_id, final_name)`.
    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(InodeId, &'p str), FsError> {
        let comps = components(path)?;
        let (last, dirs) = comps.split_last().ok_or(FsError::Inval)?;
        let mut cur = ROOT_INODE;
        for name in dirs {
            match &**self.get(cur)? {
                Inode::Dir(entries) => {
                    cur = *entries.get(*name).ok_or(FsError::NoEnt)?;
                }
                Inode::File(_) => return Err(FsError::NotDir),
            }
        }
        // The parent must itself be a directory.
        match &**self.get(cur)? {
            Inode::Dir(_) => Ok((cur, last)),
            Inode::File(_) => Err(FsError::NotDir),
        }
    }

    /// Returns metadata for `path`.
    pub fn stat(&self, path: &str) -> Result<Metadata, FsError> {
        let id = self.resolve(path)?;
        self.stat_inode(id)
    }

    /// Returns metadata for an inode id.
    pub fn stat_inode(&self, id: InodeId) -> Result<Metadata, FsError> {
        Ok(match &**self.get(id)? {
            Inode::File(data) => Metadata {
                inode: id,
                kind: FileKind::File,
                len: data.len(),
            },
            Inode::Dir(_) => Metadata {
                inode: id,
                kind: FileKind::Dir,
                len: 0,
            },
        })
    }

    /// Creates a regular file, returning its inode.
    ///
    /// With `excl`, an existing file is an error; otherwise an existing
    /// regular file is returned as-is (like `O_CREAT` without `O_EXCL`).
    pub fn create_file(&mut self, path: &str, excl: bool) -> Result<InodeId, FsError> {
        let (dir, name) = self.resolve_parent(path)?;
        validate_name(name)?;
        if let Inode::Dir(entries) = &**self.get(dir)? {
            if let Some(&existing) = entries.get(name) {
                if excl {
                    return Err(FsError::Exists);
                }
                return match &**self.get(existing)? {
                    Inode::File(_) => Ok(existing),
                    Inode::Dir(_) => Err(FsError::IsDir),
                };
            }
        }
        let id = self.alloc(Inode::File(FileData::new()));
        self.dir_insert(dir, name, id)?;
        Ok(id)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<InodeId, FsError> {
        let (dir, name) = self.resolve_parent(path)?;
        validate_name(name)?;
        if let Inode::Dir(entries) = &**self.get(dir)? {
            if entries.contains_key(name) {
                return Err(FsError::Exists);
            }
        }
        let id = self.alloc(Inode::Dir(BTreeMap::new()));
        self.dir_insert(dir, name, id)?;
        Ok(id)
    }

    fn dir_insert(&mut self, dir: InodeId, name: &str, id: InodeId) -> Result<(), FsError> {
        let name = name.to_owned();
        let inner = self.inner_mut();
        let slot = inner
            .table
            .get_mut(dir as usize)
            .and_then(Option::as_mut)
            .ok_or(FsError::NoEnt)?;
        match Arc::make_mut(slot) {
            Inode::Dir(entries) => {
                entries.insert(name, id);
                Ok(())
            }
            Inode::File(_) => Err(FsError::NotDir),
        }
    }

    fn dir_remove(&mut self, dir: InodeId, name: &str) -> Result<(), FsError> {
        let inner = self.inner_mut();
        let slot = inner
            .table
            .get_mut(dir as usize)
            .and_then(Option::as_mut)
            .ok_or(FsError::NoEnt)?;
        match Arc::make_mut(slot) {
            Inode::Dir(entries) => {
                entries.remove(name).ok_or(FsError::NoEnt)?;
                Ok(())
            }
            Inode::File(_) => Err(FsError::NotDir),
        }
    }

    /// Removes a regular file.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let (dir, name) = self.resolve_parent(path)?;
        let id = self.resolve(path)?;
        match &**self.get(id)? {
            Inode::File(_) => {}
            Inode::Dir(_) => return Err(FsError::IsDir),
        }
        let name = name.to_owned();
        self.dir_remove(dir, &name)?;
        self.release(id);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let (dir, name) = self.resolve_parent(path)?;
        let id = self.resolve(path)?;
        if id == ROOT_INODE {
            return Err(FsError::Inval);
        }
        match &**self.get(id)? {
            Inode::Dir(entries) if entries.is_empty() => {}
            Inode::Dir(_) => return Err(FsError::NotEmpty),
            Inode::File(_) => return Err(FsError::NotDir),
        }
        let name = name.to_owned();
        self.dir_remove(dir, &name)?;
        self.release(id);
        Ok(())
    }

    /// Lists the entries of a directory in name order.
    pub fn readdir(&self, path: &str) -> Result<Vec<(String, Metadata)>, FsError> {
        let id = self.resolve(path)?;
        match &**self.get(id)? {
            Inode::Dir(entries) => entries
                .iter()
                .map(|(name, &child)| Ok((name.clone(), self.stat_inode(child)?)))
                .collect(),
            Inode::File(_) => Err(FsError::NotDir),
        }
    }

    /// Read access to a file's contents by inode.
    pub fn with_file<R>(&self, id: InodeId, f: impl FnOnce(&FileData) -> R) -> Result<R, FsError> {
        match &**self.get(id)? {
            Inode::File(data) => Ok(f(data)),
            Inode::Dir(_) => Err(FsError::IsDir),
        }
    }

    /// Write access to a file's contents by inode (CoW applies).
    pub fn with_file_mut<R>(
        &mut self,
        id: InodeId,
        f: impl FnOnce(&mut FileData) -> R,
    ) -> Result<R, FsError> {
        let inner = self.inner_mut();
        let slot = inner
            .table
            .get_mut(id as usize)
            .and_then(Option::as_mut)
            .ok_or(FsError::NoEnt)?;
        match Arc::make_mut(slot) {
            Inode::File(data) => Ok(f(data)),
            Inode::Dir(_) => Err(FsError::IsDir),
        }
    }

    /// Convenience: writes a whole file at `path`, creating it if needed.
    pub fn write_file(&mut self, path: &str, bytes: &[u8]) -> Result<(), FsError> {
        let id = self.create_file(path, false)?;
        self.with_file_mut(id, |data| {
            data.truncate(0);
            data.write_at(0, bytes);
        })
    }

    /// Convenience: reads a whole file at `path`.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let id = self.resolve(path)?;
        self.with_file(id, |data| data.to_vec())
    }

    /// Total number of live inodes (diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inner
            .table
            .iter()
            .filter(|slot| slot.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_exists() {
        let vol = Volume::new();
        assert_eq!(vol.resolve("/").unwrap(), ROOT_INODE);
        assert_eq!(vol.stat("/").unwrap().kind, FileKind::Dir);
    }

    #[test]
    fn create_and_read_file() {
        let mut vol = Volume::new();
        vol.write_file("/hello.txt", b"hi").unwrap();
        assert_eq!(vol.read_file("/hello.txt").unwrap(), b"hi");
        assert_eq!(vol.stat("/hello.txt").unwrap().len, 2);
        assert_eq!(vol.stat("/hello.txt").unwrap().kind, FileKind::File);
    }

    #[test]
    fn nested_dirs() {
        let mut vol = Volume::new();
        vol.mkdir("/a").unwrap();
        vol.mkdir("/a/b").unwrap();
        vol.write_file("/a/b/f", b"deep").unwrap();
        assert_eq!(vol.read_file("/a/b/f").unwrap(), b"deep");
        // Path normalisation.
        assert_eq!(vol.read_file("//a/./b/../b/f").unwrap(), b"deep");
        // `..` above root stays at root.
        assert_eq!(vol.resolve("/../..").unwrap(), ROOT_INODE);
    }

    #[test]
    fn missing_components_error() {
        let vol = Volume::new();
        assert_eq!(vol.resolve("/nope"), Err(FsError::NoEnt));
        assert_eq!(vol.resolve("relative"), Err(FsError::Inval));
        let mut vol = Volume::new();
        vol.write_file("/f", b"x").unwrap();
        assert_eq!(vol.resolve("/f/child"), Err(FsError::NotDir));
        assert_eq!(vol.mkdir("/f/sub"), Err(FsError::NotDir));
    }

    #[test]
    fn create_excl_semantics() {
        let mut vol = Volume::new();
        let a = vol.create_file("/f", true).unwrap();
        assert_eq!(vol.create_file("/f", true), Err(FsError::Exists));
        let b = vol.create_file("/f", false).unwrap();
        assert_eq!(a, b, "non-excl open of existing file returns it");
        vol.mkdir("/d").unwrap();
        assert_eq!(vol.create_file("/d", false), Err(FsError::IsDir));
    }

    #[test]
    fn unlink_and_rmdir() {
        let mut vol = Volume::new();
        vol.write_file("/f", b"x").unwrap();
        vol.mkdir("/d").unwrap();
        assert_eq!(vol.rmdir("/f"), Err(FsError::NotDir));
        assert_eq!(vol.unlink("/d"), Err(FsError::IsDir));
        vol.write_file("/d/inner", b"y").unwrap();
        assert_eq!(vol.rmdir("/d"), Err(FsError::NotEmpty));
        vol.unlink("/d/inner").unwrap();
        vol.rmdir("/d").unwrap();
        vol.unlink("/f").unwrap();
        assert_eq!(vol.resolve("/f"), Err(FsError::NoEnt));
        assert_eq!(vol.inode_count(), 1, "only root remains");
    }

    #[test]
    fn rmdir_root_rejected() {
        let mut vol = Volume::new();
        assert_eq!(vol.rmdir("/"), Err(FsError::Inval));
    }

    #[test]
    fn inode_reuse_after_unlink() {
        let mut vol = Volume::new();
        vol.write_file("/a", b"1").unwrap();
        let old = vol.resolve("/a").unwrap();
        vol.unlink("/a").unwrap();
        vol.write_file("/b", b"2").unwrap();
        assert_eq!(vol.resolve("/b").unwrap(), old, "freed inode is reused");
    }

    #[test]
    fn readdir_sorted() {
        let mut vol = Volume::new();
        vol.write_file("/b", b"").unwrap();
        vol.write_file("/a", b"").unwrap();
        vol.mkdir("/c").unwrap();
        let names: Vec<String> = vol
            .readdir("/")
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn snapshot_isolation_files() {
        let mut vol = Volume::new();
        vol.write_file("/f", b"original").unwrap();
        let snap = vol.clone();
        vol.write_file("/f", b"changed!").unwrap();
        vol.write_file("/new", b"n").unwrap();
        vol.unlink("/f").unwrap();
        assert_eq!(snap.read_file("/f").unwrap(), b"original");
        assert_eq!(snap.resolve("/new"), Err(FsError::NoEnt));
    }

    #[test]
    fn snapshot_shares_file_chunks() {
        let mut vol = Volume::new();
        vol.write_file("/big", &vec![9u8; 10 * crate::data::CHUNK_SIZE])
            .unwrap();
        let snap = vol.clone();
        let id = vol.resolve("/big").unwrap();
        vol.with_file_mut(id, |d| d.write_at(0, b"!")).unwrap();
        let shared = vol
            .with_file(id, |d| {
                snap.with_file(id, |s| d.shared_chunks_with(s)).unwrap()
            })
            .unwrap();
        assert_eq!(shared, 9, "only the written chunk diverged");
    }

    #[test]
    fn invalid_names() {
        let mut vol = Volume::new();
        assert_eq!(vol.write_file("/bad\0name", b""), Err(FsError::Inval));
        assert_eq!(
            vol.mkdir("/"),
            Err(FsError::Inval),
            "mkdir of root is invalid"
        );
    }
}
