//! Stress and property tests for the lock-free [`Injector`].
//!
//! The satellite contract from the lock-free work-distribution PR:
//! * N producers × M consumers with a mid-stream close must deliver
//!   every accepted item exactly once (wakeup ordering cannot lose or
//!   duplicate an item);
//! * batch pushes preserve order: items of one batch are consumed in
//!   batch order, and one producer's batches in push order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lwsnap_core::workqueue::Injector;
use proptest::prelude::*;

/// N producers × M consumers; the queue is closed *mid-stream* (while
/// consumers are actively draining a non-empty queue). Every accepted
/// item must be consumed exactly once — no loss through a missed
/// wakeup, no duplication through a double claim.
#[test]
fn producers_consumers_close_midstream_no_loss_no_duplication() {
    for (producers, consumers) in [(1usize, 4usize), (4, 1), (4, 4), (8, 3)] {
        const BATCHES: u64 = 60;
        const BATCH: u64 = 25;
        let q: Arc<Injector<u64>> = Arc::new(Injector::new());
        let accepted = Arc::new(AtomicU64::new(0));

        let producer_handles: Vec<_> = (0..producers as u64)
            .map(|p| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for batch in 0..BATCHES {
                        let base = p * 1_000_000 + batch * BATCH;
                        let n = q.push_batch(base..base + BATCH) as u64;
                        accepted.fetch_add(n, Ordering::Relaxed);
                        if batch % 16 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let consumer_handles: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();

        // Quiesce producers, then close while consumers are mid-drain —
        // the queue is (almost surely) non-empty at this instant, so
        // consumers cross the close while work remains.
        for h in producer_handles {
            h.join().unwrap();
        }
        q.close();
        assert_eq!(q.push_batch([u64::MAX]), 0, "closed queue rejects work");

        let mut seen: HashMap<u64, u64> = HashMap::new();
        for h in consumer_handles {
            for item in h.join().unwrap() {
                *seen.entry(item).or_default() += 1;
            }
        }
        let total = accepted.load(Ordering::Relaxed);
        assert_eq!(
            seen.len() as u64,
            total,
            "{producers}x{consumers}: every accepted item delivered"
        );
        assert!(
            seen.values().all(|&count| count == 1),
            "{producers}x{consumers}: no item delivered twice"
        );
    }
}

/// `close` + `quiesce` + drain strands nothing: every item a producer
/// was told was accepted is retrievable, even when the close races the
/// pushes — the contract `WorkerPool::shutdown` relies on so a client
/// blocked on a reply can never hang on a job nobody will run.
#[test]
fn close_quiesce_drain_strands_nothing() {
    for _ in 0..200 {
        let q: Arc<Injector<u64>> = Arc::new(Injector::new());
        let accepted = Arc::new(AtomicU64::new(0));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                let accepted = Arc::clone(&accepted);
                std::thread::spawn(move || {
                    for i in 0..40u64 {
                        let base = p * 1000 + i * 2;
                        let n = q.push_batch([base, base + 1]) as u64;
                        accepted.fetch_add(n, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        // Race the close against the pushes, then make it exact.
        q.close();
        q.quiesce();
        let mut drained = 0u64;
        while q.try_pop().is_some() {
            drained += 1;
        }
        // Producers still running only see rejections from here on.
        for p in producers {
            p.join().unwrap();
        }
        assert!(q.try_pop().is_none(), "nothing accepted after quiesce");
        assert_eq!(
            drained,
            accepted.load(Ordering::Relaxed),
            "every accepted item is drained, none stranded"
        );
    }
}

/// Reclamation hammer: spinning `try_pop` consumers racing producers.
/// This drives the segment-retirement path as hard as possible — every
/// batch drains while other consumers still hold (possibly stale) head
/// pointers, so a use-after-free in the grace-period scheme segfaults
/// or corrupts the delivered multiset.
#[test]
fn try_pop_reclamation_hammer() {
    for round in 0..10 {
        const ITEMS: u64 = 40_000;
        const THREADS: u64 = 4;
        let q: Arc<Injector<u64>> = Arc::new(Injector::new());
        let consumed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for p in 0..THREADS {
                let q = Arc::clone(&q);
                scope.spawn(move || {
                    let per = ITEMS / THREADS;
                    // Small batches => maximal segment churn.
                    for base in 0..(per / 8) {
                        let start = p * per + base * 8;
                        q.push_batch(start..start + 8);
                    }
                });
            }
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let q = Arc::clone(&q);
                    let consumed = Arc::clone(&consumed);
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        loop {
                            match q.try_pop() {
                                Some(v) => {
                                    got.push(v);
                                    consumed.fetch_add(1, Ordering::Relaxed);
                                }
                                None => {
                                    if consumed.load(Ordering::Relaxed) >= ITEMS {
                                        break;
                                    }
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            let mut all: Vec<u64> = Vec::new();
            for h in handles {
                all.extend(h.join().unwrap());
            }
            all.sort_unstable();
            let expected: Vec<u64> = (0..ITEMS).collect();
            assert_eq!(all, expected, "round {round}: exact delivery");
        });
    }
}

/// A consumer parked on the condvar is woken by a later batch; repeat
/// the park/wake cycle many times to hammer the sleeper handshake.
#[test]
fn parked_consumer_wakeup_ordering() {
    let q: Arc<Injector<u64>> = Arc::new(Injector::new());
    let consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(v) = q.pop() {
                sum += v;
            }
            sum
        })
    };
    let mut expected = 0u64;
    for i in 0..500u64 {
        // Tiny sleep every so often to let the consumer actually park,
        // exercising the producer-side "is anybody sleeping" check both
        // ways.
        if i % 37 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        q.push(i);
        expected += i;
    }
    q.close();
    assert_eq!(consumer.join().unwrap(), expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batch-push ordering: a single producer pushing arbitrary batches
    /// and a single consumer draining sees the exact concatenation —
    /// FIFO within each batch and across batches.
    #[test]
    fn batch_push_preserves_fifo_order(batches in proptest::collection::vec(
        proptest::collection::vec(0u32..1000, 0..12), 0..12)) {
        let q = Injector::new();
        let mut expected = Vec::new();
        for batch in &batches {
            let accepted = q.push_batch(batch.iter().copied());
            prop_assert_eq!(accepted, batch.len());
            expected.extend_from_slice(batch);
        }
        q.close();
        let mut got = Vec::new();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        prop_assert_eq!(got, expected);
    }

    /// Under concurrent consumption, each producer's items still appear
    /// in per-producer FIFO order within any single consumer's stream
    /// is NOT guaranteed (items interleave across consumers); what is
    /// guaranteed — and checked here — is that the *claim order* of one
    /// producer's items is their push order: reassembling all consumer
    /// streams by item must cover each producer's sequence exactly.
    #[test]
    fn concurrent_drain_delivers_exact_multiset(
        batch_sizes in proptest::collection::vec(1usize..20, 1..10),
        consumers in 1usize..4,
    ) {
        let q: Arc<Injector<u64>> = Arc::new(Injector::new());
        let mut expected = Vec::new();
        let mut next = 0u64;
        for size in &batch_sizes {
            let batch: Vec<u64> = (next..next + *size as u64).collect();
            next += *size as u64;
            expected.extend_from_slice(&batch);
            q.push_batch(batch);
        }
        q.close();
        let handles: Vec<_> = (0..consumers).map(|_| {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        }).collect();
        let mut all = Vec::new();
        for h in handles {
            let got = h.join().unwrap();
            // Each consumer's stream is strictly increasing: claims are
            // handed out in order and a single consumer's claims are
            // totally ordered.
            prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
            all.extend(got);
        }
        all.sort_unstable();
        prop_assert_eq!(all, expected);
    }
}
