//! Lightweight immutable execution snapshots and the snapshot tree.
//!
//! A [`Snapshot`] is the paper's *partial candidate*: an immutable register
//! file, an immutable logical copy of the entire address space, and an
//! immutable view of the files — plus an optional application extension
//! (used e.g. by the symbolic-execution crate to attach path constraints).
//!
//! Snapshots live in a [`SnapshotTree`]. Every unevaluated extension step
//! holds one *pending reference* on its parent snapshot; when the last
//! pending reference is consumed the snapshot's storage is reclaimed. This
//! is how the engine sustains the paper's "rapid creation (and destruction)
//! of snapshot trees".

use std::any::Any;
use std::sync::Arc;

use lwsnap_fs::FsView;
use lwsnap_mem::AddressSpace;

use crate::guest::GuestState;
use crate::registers::RegisterFile;

/// Opaque application data carried along with a snapshot (e.g. symbolic
/// path constraints). Shared immutably via `Arc`.
pub type ExtData = Arc<dyn Any + Send + Sync>;

/// Identifier of a snapshot within one [`SnapshotTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u32);

/// An immutable partial candidate.
///
/// All fields are private: a snapshot can only be *materialised* into a
/// fresh mutable [`GuestState`], never mutated in place.
#[derive(Clone)]
pub struct Snapshot {
    regs: RegisterFile,
    mem: AddressSpace,
    fs: FsView,
    ext: Option<ExtData>,
    depth: u64,
    gcost: u64,
    parent: Option<SnapshotId>,
}

impl Snapshot {
    /// Captures the current guest state as an immutable snapshot.
    ///
    /// Capture is O(1): the address space and file view are structurally
    /// shared, and divergence is paid lazily via copy-on-write.
    pub fn capture(state: &GuestState, parent: Option<SnapshotId>) -> Snapshot {
        Snapshot {
            regs: state.regs,
            mem: state.mem.snapshot(),
            fs: state.fs.clone(),
            ext: state.ext.clone(),
            depth: state.depth,
            gcost: state.gcost,
            parent,
        }
    }

    /// Produces a fresh mutable guest state starting from this snapshot.
    pub fn materialize(&self) -> GuestState {
        GuestState {
            regs: self.regs,
            mem: self.mem.clone(),
            fs: self.fs.clone(),
            ext: self.ext.clone(),
            depth: self.depth,
            gcost: self.gcost,
            steps: 0,
        }
    }

    /// The captured register file.
    pub fn regs(&self) -> &RegisterFile {
        &self.regs
    }

    /// The captured (immutable) address space.
    pub fn mem(&self) -> &AddressSpace {
        &self.mem
    }

    /// The captured (immutable) file view.
    pub fn fs(&self) -> &FsView {
        &self.fs
    }

    /// The application extension data, if any.
    pub fn ext(&self) -> Option<&ExtData> {
        self.ext.as_ref()
    }

    /// Distance (in guesses) from the root state.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Accumulated path cost (for informed search strategies).
    pub fn gcost(&self) -> u64 {
        self.gcost
    }

    /// The parent snapshot, if it has not been reclaimed.
    pub fn parent(&self) -> Option<SnapshotId> {
        self.parent
    }
}

struct SnapNode {
    snap: Snapshot,
    /// Unevaluated extension steps still referencing this snapshot.
    pending: u32,
    /// Pinned snapshots are exempt from reclamation (external strategies,
    /// solver-service handles).
    pinned: bool,
}

/// Arena of live snapshots with pending-reference reclamation.
pub struct SnapshotTree {
    nodes: Vec<Option<SnapNode>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    total_created: u64,
    total_reclaimed: u64,
}

impl Default for SnapshotTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        SnapshotTree {
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            total_created: 0,
            total_reclaimed: 0,
        }
    }

    /// Inserts a snapshot with `pending` unevaluated extension references.
    ///
    /// A snapshot inserted with `pending == 0` is reclaimed immediately
    /// unless pinned, so callers normally pass the extension fan-out.
    pub fn insert(&mut self, snap: Snapshot, pending: u32) -> SnapshotId {
        let node = SnapNode {
            snap,
            pending,
            pinned: false,
        };
        self.total_created += 1;
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        let id = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Some(node);
            SnapshotId(idx)
        } else {
            self.nodes.push(Some(node));
            SnapshotId((self.nodes.len() - 1) as u32)
        };
        if pending == 0 {
            self.maybe_reclaim(id);
        }
        id
    }

    /// Looks up a live snapshot.
    pub fn get(&self, id: SnapshotId) -> Option<&Snapshot> {
        self.nodes
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|n| &n.snap)
    }

    /// Consumes one pending reference; reclaims the snapshot when the last
    /// reference is gone (and it is not pinned).
    pub fn release(&mut self, id: SnapshotId) {
        if let Some(node) = self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut) {
            node.pending = node.pending.saturating_sub(1);
            if node.pending == 0 {
                self.maybe_reclaim(id);
            }
        }
    }

    /// Adds `n` pending references (e.g. an external strategy scheduling
    /// more extensions of an existing partial candidate).
    pub fn retain(&mut self, id: SnapshotId, n: u32) -> bool {
        match self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut) {
            Some(node) => {
                node.pending += n;
                true
            }
            None => false,
        }
    }

    /// Pins a snapshot so it survives even with zero pending references.
    pub fn pin(&mut self, id: SnapshotId) -> bool {
        match self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut) {
            Some(node) => {
                node.pinned = true;
                true
            }
            None => false,
        }
    }

    /// Unpins a snapshot, reclaiming it if no references remain.
    pub fn unpin(&mut self, id: SnapshotId) {
        if let Some(node) = self.nodes.get_mut(id.0 as usize).and_then(Option::as_mut) {
            node.pinned = false;
            if node.pending == 0 {
                self.maybe_reclaim(id);
            }
        }
    }

    fn maybe_reclaim(&mut self, id: SnapshotId) {
        let slot = &mut self.nodes[id.0 as usize];
        if let Some(node) = slot {
            if node.pending == 0 && !node.pinned {
                *slot = None;
                self.free.push(id.0);
                self.live -= 1;
                self.total_reclaimed += 1;
            }
        }
    }

    /// Number of live snapshots.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live snapshots.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total snapshots ever created.
    pub fn total_created(&self) -> u64 {
        self.total_created
    }

    /// Total snapshots reclaimed.
    pub fn total_reclaimed(&self) -> u64 {
        self.total_reclaimed
    }

    /// Depth-first ancestry chain of `id` (nearest first), following
    /// parents that are still live.
    pub fn ancestry(&self, id: SnapshotId) -> Vec<SnapshotId> {
        let mut out = Vec::new();
        let mut cur = self.get(id).and_then(Snapshot::parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.get(p).and_then(Snapshot::parent);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwsnap_mem::{Prot, RegionKind, PAGE_SIZE};

    fn state() -> GuestState {
        let mut st = GuestState::new();
        st.mem
            .map_fixed(0x1000, PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "t")
            .unwrap();
        st.mem.write_u64(0x1000, 7).unwrap();
        st
    }

    #[test]
    fn capture_materialize_roundtrip() {
        let mut st = state();
        st.regs.set(crate::registers::Reg::Rbx, 99);
        st.depth = 3;
        let snap = Snapshot::capture(&st, None);
        let mut st2 = snap.materialize();
        assert_eq!(st2.regs.get(crate::registers::Reg::Rbx), 99);
        assert_eq!(st2.mem.read_u64(0x1000).unwrap(), 7);
        assert_eq!(st2.depth, 3);
        assert_eq!(st2.steps, 0, "step budget resets per materialisation");
    }

    #[test]
    fn snapshot_immune_to_later_writes() {
        let mut st = state();
        let snap = Snapshot::capture(&st, None);
        st.mem.write_u64(0x1000, 999).unwrap();
        st.regs.set(crate::registers::Reg::Rax, 5);
        assert_eq!(snap.materialize().mem.read_u64(0x1000).unwrap(), 7);
        assert_eq!(snap.regs().get(crate::registers::Reg::Rax), 0);
    }

    #[test]
    fn tree_reclaims_on_last_release() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let id = tree.insert(Snapshot::capture(&st, None), 2);
        assert!(tree.get(id).is_some());
        assert_eq!(tree.live(), 1);
        tree.release(id);
        assert!(tree.get(id).is_some(), "one reference remains");
        tree.release(id);
        assert!(tree.get(id).is_none(), "reclaimed");
        assert_eq!(tree.live(), 0);
        assert_eq!(tree.total_reclaimed(), 1);
    }

    #[test]
    fn tree_reuses_slots() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let a = tree.insert(Snapshot::capture(&st, None), 1);
        tree.release(a);
        let b = tree.insert(Snapshot::capture(&st, None), 1);
        assert_eq!(a, b, "slot reused after reclamation");
        assert_eq!(tree.total_created(), 2);
    }

    #[test]
    fn pin_blocks_reclamation() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let id = tree.insert(Snapshot::capture(&st, None), 1);
        tree.pin(id);
        tree.release(id);
        assert!(tree.get(id).is_some(), "pinned snapshots survive");
        tree.unpin(id);
        assert!(tree.get(id).is_none());
    }

    #[test]
    fn insert_with_zero_pending_reclaims_unless_pinned() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let id = tree.insert(Snapshot::capture(&st, None), 0);
        assert!(tree.get(id).is_none());
    }

    #[test]
    fn retain_adds_references() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let id = tree.insert(Snapshot::capture(&st, None), 1);
        assert!(tree.retain(id, 2));
        tree.release(id);
        tree.release(id);
        assert!(tree.get(id).is_some());
        tree.release(id);
        assert!(tree.get(id).is_none());
        assert!(!tree.retain(id, 1), "retain on dead id fails");
    }

    #[test]
    fn peak_live_tracks_high_water() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let ids: Vec<_> = (0..5)
            .map(|_| tree.insert(Snapshot::capture(&st, None), 1))
            .collect();
        assert_eq!(tree.peak_live(), 5);
        for id in ids {
            tree.release(id);
        }
        assert_eq!(tree.live(), 0);
        assert_eq!(tree.peak_live(), 5);
    }

    #[test]
    fn ancestry_chain() {
        let mut tree = SnapshotTree::new();
        let st = state();
        let a = tree.insert(Snapshot::capture(&st, None), 1);
        let b = tree.insert(Snapshot::capture(&st, Some(a)), 1);
        let c = tree.insert(Snapshot::capture(&st, Some(b)), 1);
        assert_eq!(tree.ancestry(c), vec![b, a]);
        assert_eq!(tree.ancestry(a), vec![]);
    }

    #[test]
    fn snapshots_share_memory_structurally() {
        let st = state();
        let s1 = Snapshot::capture(&st, None);
        let s2 = Snapshot::capture(&st, None);
        // Both snapshots share the full page table with the live state.
        assert!(s1.mem().same_table_root(s2.mem()));
        assert_eq!(s1.mem().shared_frames_with(s2.mem()), 1);
    }
}
