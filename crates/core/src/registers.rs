//! The guest register file.
//!
//! A lightweight snapshot is "a copy of the register file and an immutable
//! logical copy of the entire address space" (paper §1). The register file
//! follows the x86-64 shape the paper assumes: 16 general-purpose registers
//! with their conventional names, an instruction pointer, and arithmetic
//! flags. The guess result is delivered in `%rax`, exactly as in §4 ("sets
//! the extension number into `%rax`, and resumes execution").

use core::fmt;

/// General-purpose register names (x86-64 encoding order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; syscall number and return value.
    Rax = 0,
    /// Counter.
    Rcx = 1,
    /// Third syscall argument.
    Rdx = 2,
    /// Callee-saved base.
    Rbx = 3,
    /// Stack pointer.
    Rsp = 4,
    /// Frame pointer.
    Rbp = 5,
    /// Second syscall argument.
    Rsi = 6,
    /// First syscall argument.
    Rdi = 7,
    /// Fifth syscall argument.
    R8 = 8,
    /// Sixth syscall argument.
    R9 = 9,
    /// Fourth syscall argument.
    R10 = 10,
    /// Scratch.
    R11 = 11,
    /// Callee-saved.
    R12 = 12,
    /// Callee-saved.
    R13 = 13,
    /// Callee-saved.
    R14 = 14,
    /// Callee-saved.
    R15 = 15,
}

impl Reg {
    /// All registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Decodes a register number (0..16).
    pub fn from_u8(n: u8) -> Option<Reg> {
        Reg::ALL.get(n as usize).copied()
    }

    /// Encoding number of the register.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Conventional assembly name (without `%`).
    pub fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }

    /// Parses a register name (with or without a leading `%`).
    pub fn parse(name: &str) -> Option<Reg> {
        let name = name.strip_prefix('%').unwrap_or(name);
        Reg::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Arithmetic condition flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

impl Flags {
    /// Packs the flags into a compact integer (for snapshot digests).
    pub fn pack(self) -> u64 {
        (self.zf as u64) | (self.sf as u64) << 1 | (self.cf as u64) << 2 | (self.of as u64) << 3
    }

    /// Unpacks flags produced by [`Flags::pack`].
    pub fn unpack(bits: u64) -> Flags {
        Flags {
            zf: bits & 1 != 0,
            sf: bits & 2 != 0,
            cf: bits & 4 != 0,
            of: bits & 8 != 0,
        }
    }
}

/// The complete architected register state of a single-threaded guest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegisterFile {
    gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Condition flags.
    pub flags: Flags,
}

impl RegisterFile {
    /// Returns a zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a general-purpose register.
    #[inline]
    pub fn get(&self, reg: Reg) -> u64 {
        self.gpr[reg.index()]
    }

    /// Writes a general-purpose register.
    #[inline]
    pub fn set(&mut self, reg: Reg, value: u64) {
        self.gpr[reg.index()] = value;
    }

    /// The six syscall argument registers in ABI order
    /// (`rdi, rsi, rdx, r10, r8, r9` — the Linux convention).
    pub fn syscall_args(&self) -> [u64; 6] {
        [
            self.get(Reg::Rdi),
            self.get(Reg::Rsi),
            self.get(Reg::Rdx),
            self.get(Reg::R10),
            self.get(Reg::R8),
            self.get(Reg::R9),
        ]
    }

    /// Sets the syscall return value (`%rax`).
    pub fn set_return(&mut self, value: u64) {
        self.set(Reg::Rax, value);
    }

    /// Sets a negative-errno return value, Linux style.
    pub fn set_errno(&mut self, errno: i64) {
        self.set(Reg::Rax, (-errno) as u64);
    }
}

impl fmt::Display for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            if i % 4 == 0 && i != 0 {
                writeln!(f)?;
            }
            write!(f, "{:>4}={:016x} ", reg.name(), self.get(*reg))?;
        }
        write!(
            f,
            "\n rip={:016x} flags={:04b}",
            self.rip,
            self.flags.pack()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip_all() {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(reg.index(), i);
            assert_eq!(Reg::from_u8(i as u8), Some(*reg));
            assert_eq!(Reg::parse(reg.name()), Some(*reg));
            assert_eq!(Reg::parse(&format!("%{}", reg.name())), Some(*reg));
        }
        assert_eq!(Reg::from_u8(16), None);
        assert_eq!(Reg::parse("zzz"), None);
    }

    #[test]
    fn get_set() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::Rax, 42);
        regs.set(Reg::R15, u64::MAX);
        assert_eq!(regs.get(Reg::Rax), 42);
        assert_eq!(regs.get(Reg::R15), u64::MAX);
        assert_eq!(regs.get(Reg::Rbx), 0);
    }

    #[test]
    fn syscall_abi_order() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::Rdi, 1);
        regs.set(Reg::Rsi, 2);
        regs.set(Reg::Rdx, 3);
        regs.set(Reg::R10, 4);
        regs.set(Reg::R8, 5);
        regs.set(Reg::R9, 6);
        assert_eq!(regs.syscall_args(), [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn errno_is_negative() {
        let mut regs = RegisterFile::new();
        regs.set_errno(2);
        assert_eq!(regs.get(Reg::Rax) as i64, -2);
    }

    #[test]
    fn flags_pack_roundtrip() {
        for bits in 0..16u64 {
            assert_eq!(Flags::unpack(bits).pack(), bits);
        }
    }

    #[test]
    fn display_contains_registers() {
        let mut regs = RegisterFile::new();
        regs.set(Reg::Rax, 0xabcd);
        let s = regs.to_string();
        assert!(s.contains("rax=000000000000abcd"));
        assert!(s.contains("rip="));
    }
}
