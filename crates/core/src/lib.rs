//! # lwsnap-core — lightweight snapshots and system-level backtracking
//!
//! A faithful reimplementation of the abstractions proposed in
//! *"Lightweight Snapshots and System-level Backtracking"* (Bugnion,
//! Chipounov, Candea — HotOS 2013), on a software MMU instead of Dune's
//! hardware virtualisation (see `DESIGN.md` for the substitution argument).
//!
//! The paper's vocabulary maps onto this crate directly:
//!
//! | Paper concept | Here |
//! |---|---|
//! | partial candidate (immutable registers + address space + files) | [`Snapshot`] |
//! | candidate extension step | [`strategy::ExtensionRef`] + a [`Guest`] resume |
//! | `sys_guess` / `sys_guess_fail` / `sys_guess_strategy` | [`interpose::Sysno::Guess`] family |
//! | search strategy (DFS, BFS, A*, SM-A*, external) | [`strategy::Strategy`] implementations |
//! | the libOS scheduler loop | [`Engine::run`] |
//! | syscall interposition (§5) | [`interpose::handle_syscall`] |
//!
//! ## Quick taste (host-closure guest)
//!
//! Guests are usually SVM-64 programs executed by the `lwsnap-vm` crate,
//! but anything implementing [`Guest`] works — including a scripted state
//! machine:
//!
//! ```
//! use lwsnap_core::{Engine, Exit, GuestState, Reg, strategy::Dfs};
//!
//! // Enumerate 2-bit strings; emit "ab" for each (a,b) pair.
//! let mut guest = |st: &mut GuestState| -> Exit {
//!     match st.regs.get(Reg::Rbx) {
//!         0 => { st.regs.set(Reg::Rbx, 1); Exit::Guess { n: 2, hint: None } }
//!         1 => {
//!             st.regs.set(Reg::R12, st.regs.get(Reg::Rax)); // first guess
//!             st.regs.set(Reg::Rbx, 2);
//!             Exit::Guess { n: 2, hint: None }
//!         }
//!         2 => {
//!             let (a, b) = (st.regs.get(Reg::R12), st.regs.get(Reg::Rax));
//!             st.regs.set(Reg::Rbx, 3);
//!             Exit::Output { fd: 1, data: format!("{a}{b} ").into_bytes() }
//!         }
//!         _ => Exit::Fail,
//!     }
//! };
//!
//! let mut engine = Engine::new(Dfs::new());
//! let result = engine.run(&mut guest, GuestState::new());
//! assert_eq!(result.transcript_str(), "00 01 10 11 ");
//! ```

// `deny` rather than `forbid`: the lock-free work-distribution modules
// (`deque`, `workqueue`) opt in with module-level `allow(unsafe_code)`
// and carry per-call SAFETY arguments; everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod deque;
pub mod engine;
pub mod guest;
pub mod interpose;
pub mod parallel;
pub mod registers;
pub mod replay;
pub mod snapshot;
pub mod strategy;
pub mod workqueue;

pub use engine::{Engine, EngineConfig, EngineStats, FaultPolicy, RunResult, Solution, StopReason};
pub use guest::{Exit, GuessHint, Guest, GuestFault, GuestState};
pub use interpose::{handle_syscall, InterposePolicy, SyscallEffect, Sysno};
pub use parallel::{ParallelConfig, ParallelEngine, ParallelRunResult};
pub use registers::{Flags, Reg, RegisterFile};
pub use replay::{replay_dfs, Outcome, ReplayCtx, ReplayResult, ReplayStats};
pub use snapshot::{ExtData, Snapshot, SnapshotId, SnapshotTree};
