//! The guest abstraction: mutable execution state and the resume contract.
//!
//! The engine is generic over *what* executes an extension step. The paper
//! runs arbitrary x86 ring-3 code; this workspace's `lwsnap-vm` crate plays
//! that role with the SVM-64 interpreter. Unit tests (and simple host-side
//! search problems) implement [`Guest`] with scripted state machines.
//!
//! The contract: [`Guest::resume`] runs the guest forward *mutating the
//! given state in place* until the guest traps back into the libOS — by
//! guessing, failing, emitting output, exiting, or faulting.

use lwsnap_fs::FsView;
use lwsnap_mem::{AddressSpace, Fault};

use crate::registers::RegisterFile;
use crate::snapshot::ExtData;

/// The complete mutable state of one executing extension step.
pub struct GuestState {
    /// Architected registers.
    pub regs: RegisterFile,
    /// The guest address space (snapshottable).
    pub mem: AddressSpace,
    /// The guest file view (snapshottable).
    pub fs: FsView,
    /// Opaque application data riding along with snapshots.
    pub ext: Option<ExtData>,
    /// Number of guesses on the path from the root.
    pub depth: u64,
    /// Accumulated path cost reported via guess hints (informed search).
    pub gcost: u64,
    /// Steps executed since the last materialisation (budget accounting).
    pub steps: u64,
}

impl Default for GuestState {
    fn default() -> Self {
        Self::new()
    }
}

impl GuestState {
    /// Creates a blank state: zero registers, empty memory, empty volume.
    pub fn new() -> Self {
        GuestState {
            regs: RegisterFile::new(),
            mem: AddressSpace::new(),
            fs: FsView::default(),
            ext: None,
            depth: 0,
            gcost: 0,
            steps: 0,
        }
    }

    /// Creates a state over an existing address space and file view.
    pub fn with_parts(regs: RegisterFile, mem: AddressSpace, fs: FsView) -> Self {
        GuestState {
            regs,
            mem,
            fs,
            ext: None,
            depth: 0,
            gcost: 0,
            steps: 0,
        }
    }
}

/// Heuristic information supplied with an extended guess (paper §3.1:
/// "search strategies that rely on goal-distance heuristics such as A* and
/// SM-A* require that the distance vector of the extension steps be
/// communicated via an extended guess system call").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuessHint {
    /// Path cost accumulated so far (`g` in A* terms).
    pub g: u64,
    /// Estimated remaining cost per extension (`h(i)` for extension `i`).
    /// May be shorter than the fan-out; missing entries default to 0.
    pub h: Vec<u64>,
}

/// Why the guest stopped executing and trapped into the libOS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Exit {
    /// `sys_guess(n)`: create a partial candidate with `n` extensions.
    Guess {
        /// Number of alternative extensions (the guess domain size).
        n: u64,
        /// Optional heuristic vector for informed strategies.
        hint: Option<GuessHint>,
    },
    /// `sys_guess_fail()`: discard this extension step; never returns.
    Fail,
    /// `sys_emit()`: declare the current path a solution and continue.
    Emit,
    /// Normal termination with an exit code.
    Exit {
        /// Guest-provided exit code.
        code: i64,
    },
    /// Console output that escapes containment (fd 1/2 write-through).
    Output {
        /// Destination (1 = stdout, 2 = stderr).
        fd: u32,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// An unrecoverable guest fault (bad memory access, illegal
    /// instruction, denied syscall in strict mode, step-budget overrun).
    Fault(GuestFault),
}

/// Faults a guest can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuestFault {
    /// Memory access fault from the MMU.
    Memory(Fault),
    /// Undefined or malformed instruction at `rip`.
    IllegalInstruction {
        /// Address of the offending instruction.
        rip: u64,
    },
    /// A syscall rejected by the encapsulation policy in strict mode.
    DeniedSyscall {
        /// The syscall number.
        nr: u64,
    },
    /// The per-resume step budget was exhausted (runaway extension).
    StepBudget,
    /// Guest-specific fault description.
    Other(String),
}

impl std::fmt::Display for GuestFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuestFault::Memory(fault) => write!(f, "memory fault: {fault}"),
            GuestFault::IllegalInstruction { rip } => {
                write!(f, "illegal instruction at {rip:#x}")
            }
            GuestFault::DeniedSyscall { nr } => write!(f, "denied syscall {nr}"),
            GuestFault::StepBudget => write!(f, "step budget exhausted"),
            GuestFault::Other(msg) => write!(f, "{msg}"),
        }
    }
}

/// Something that can execute guest code against a [`GuestState`].
pub trait Guest {
    /// Runs the guest forward from `state` until it traps.
    ///
    /// On [`Exit::Guess`] the engine will capture a snapshot of `state`
    /// exactly as left by this call, inject the chosen extension number
    /// into `%rax`, and call `resume` again — so the guest must leave
    /// `state.regs.rip` pointing *after* the guessing instruction.
    fn resume(&mut self, state: &mut GuestState) -> Exit;
}

impl<F: FnMut(&mut GuestState) -> Exit> Guest for F {
    fn resume(&mut self, state: &mut GuestState) -> Exit {
        self(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::Reg;

    #[test]
    fn closure_is_a_guest() {
        let mut g = |state: &mut GuestState| -> Exit {
            state.regs.set(Reg::Rbx, state.regs.get(Reg::Rbx) + 1);
            Exit::Exit { code: 0 }
        };
        let mut st = GuestState::new();
        assert_eq!(g.resume(&mut st), Exit::Exit { code: 0 });
        assert_eq!(st.regs.get(Reg::Rbx), 1);
    }

    #[test]
    fn fault_display() {
        let f = GuestFault::IllegalInstruction { rip: 0x400000 };
        assert!(f.to_string().contains("0x400000"));
        assert!(GuestFault::StepBudget.to_string().contains("budget"));
    }
}
