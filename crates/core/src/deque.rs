//! A lock-free work-stealing deque (Chase–Lev).
//!
//! This is the "lock-free upgrade" the [`crate::workqueue`] module's
//! original doc-comment promised: the work-distribution primitive for
//! **fine-grained** items, where a `Mutex<VecDeque>`'s lock/unlock pair
//! costs more than the work item itself. The design is the classic
//! Chase–Lev circular-buffer deque ("Dynamic Circular Work-Stealing
//! Deque", SPAA '05) with the memory orderings of Lê, Pop, Cohen &
//! Nardelli ("Correct and Efficient Work-Stealing for Weak Memory
//! Models", PPoPP '13) — the same algorithm crossbeam and rayon ship.
//! The build is offline, so it is implemented in-tree.
//!
//! ## Shape
//!
//! * One **owner** ([`Deque`]) pushes and pops at the *bottom* — LIFO,
//!   no atomic read-modify-write on `push` at all (a plain indexed store
//!   plus a `Release` publish of `bottom`).
//! * Any number of **thieves** ([`Stealer`], `Clone + Send + Sync`)
//!   steal from the *top* — FIFO, one `compare_exchange` per steal.
//! * The buffer grows geometrically; retired buffers are kept alive
//!   until the deque drops (doubling means the retired generations sum
//!   to less than the final buffer, so this "leak" is bounded by 2× and
//!   buys complete freedom from use-after-free during concurrent
//!   steals — no epoch machinery needed).
//!
//! The owner handle is `Send` but deliberately neither `Clone` nor
//! `Sync`: Rust's ownership rules *are* the single-owner invariant the
//! algorithm requires.
//!
//! ```
//! use lwsnap_core::deque::{Deque, Steal};
//!
//! let mut d = Deque::new();
//! let stealer = d.stealer();
//! d.push(1);
//! d.push(2);
//! assert_eq!(d.pop(), Some(2)); // owner pops LIFO…
//! assert_eq!(stealer.steal(), Steal::Success(1)); // …thieves steal FIFO
//! assert_eq!(d.pop(), None);
//! ```
#![allow(unsafe_code)] // the one module that needs it; see SAFETY comments

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Smallest buffer allocated. Power of two; big enough that typical
/// search frontiers never grow, small enough to be cheap when thousands
/// of deques exist.
const MIN_CAP: usize = 64;

/// The circular buffer: a power-of-two array indexed by the low bits of
/// the unbounded `top`/`bottom` counters. Slots are `MaybeUninit` — the
/// `top..bottom` window tracks which slots logically hold a value.
struct Buffer<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: cap - 1,
            slots,
        }))
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Raw pointer to the slot for logical index `i`.
    fn slot(&self, i: isize) -> *mut MaybeUninit<T> {
        self.slots[i as usize & self.mask].get()
    }

    /// Writes `v` into logical slot `i`.
    ///
    /// SAFETY: caller must be the owner and `i` must be outside every
    /// concurrent reader's claimed window (`i == bottom`, unpublished).
    unsafe fn write(&self, i: isize, v: T) {
        (*self.slot(i)).write(v);
    }

    /// Copies the raw bits of logical slot `i` **without** asserting
    /// initialisation — the result is still `MaybeUninit`, so a
    /// speculative copy of a torn or stale slot never materialises an
    /// invalid `T`. Callers `assume_init` only once unique logical
    /// ownership of index `i` is certain (the owner by construction,
    /// a thief after its `top` CAS succeeds).
    ///
    /// SAFETY: `i`'s physical slot must be in bounds (always true — the
    /// index is masked); the *bits* may be anything.
    unsafe fn read(&self, i: isize) -> MaybeUninit<T> {
        std::ptr::read(self.slot(i))
    }
}

/// Shared state behind one deque: the Chase–Lev triple plus the retired
/// buffer list.
struct Inner<T> {
    /// Steal index. Monotonically increasing; mutated only by
    /// `compare_exchange` (thieves and the owner's last-element pop).
    top: AtomicIsize,
    /// Push/pop index. Written only by the owner.
    bottom: AtomicIsize,
    /// Current circular buffer. Replaced only by the owner (on grow).
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers retired by `grow`, freed at drop. Locked only by the
    /// owner during a grow and by drop — never on push/pop/steal fast
    /// paths, so the deque's lock-freedom claim is about the operations
    /// that matter.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the raw buffer pointers are owned by `Inner` (freed exactly
// once, at drop); values of `T` are moved across threads but never
// aliased (each logical index is read by exactly one winner), so `T:
// Send` suffices — `T: Sync` is not required.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: all handles are gone. Drop the live window,
        // then free the current and retired buffers. Retired buffers
        // hold only stale bitwise copies (moved out during `grow`), so
        // their slots must NOT be dropped.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        let buf_ptr = *self.buffer.get_mut();
        unsafe {
            let buf = &*buf_ptr;
            let mut i = t;
            while i < b {
                (*buf.slot(i)).assume_init_drop();
                i += 1;
            }
            drop(Box::from_raw(buf_ptr));
        }
        for old in self.retired.get_mut().unwrap().drain(..) {
            unsafe { drop(Box::from_raw(old)) };
        }
    }
}

/// The owner handle: LIFO push/pop at the bottom. `Send`, not `Clone`.
pub struct Deque<T> {
    inner: Arc<Inner<T>>,
}

/// A thief handle: FIFO steals from the top. Cheap to clone and share.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// Stole a value.
    Success(T),
}

impl<T> Default for Deque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Deque<T> {
    /// An empty deque with the minimum buffer capacity.
    pub fn new() -> Self {
        Deque {
            inner: Arc::new(Inner {
                top: AtomicIsize::new(0),
                bottom: AtomicIsize::new(0),
                buffer: AtomicPtr::new(Buffer::alloc(MIN_CAP)),
                retired: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A new thief handle onto this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of items currently in the deque (owner's exact view).
    pub fn len(&self) -> usize {
        let inner = &*self.inner;
        // Relaxed: the owner wrote `bottom`; `top` only races upward, so
        // the result is a momentary-but-never-negative snapshot.
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes a value at the bottom (the LIFO end).
    ///
    /// The fast path is entirely wait-free for the owner: two loads, an
    /// indexed store and one `Release` store — no read-modify-write.
    pub fn push(&mut self, value: T) {
        let inner = &*self.inner;
        // Relaxed: only the owner writes `bottom` and `buffer`, so it
        // reads its own latest values by program order.
        let b = inner.bottom.load(Ordering::Relaxed);
        // Acquire: pairs with the Release/SeqCst CAS on `top` so that a
        // slot freed by a completed steal is observed free before the
        // owner recycles it (otherwise a wrapped write could overwrite a
        // value the thief has not finished claiming).
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.cap() as isize {
            self.grow(b, t);
            buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        }
        // SAFETY: index `b` is outside the published window [t, b), and
        // after the capacity check it does not alias any live slot.
        unsafe { buf.write(b, value) };
        // Release: publishes the slot write — a thief that Acquires a
        // `bottom` value > b observes the slot's contents.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pops a value from the bottom (the LIFO end).
    pub fn pop(&mut self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = unsafe { &*inner.buffer.load(Ordering::Relaxed) };
        // Reserve index b before examining `top`. Relaxed is enough for
        // the store itself: the SeqCst fence below globally orders it.
        inner.bottom.store(b, Ordering::Relaxed);
        // SeqCst fence: the heart of the algorithm. The owner's
        // (store bottom → load top) must not be reordered, and must form
        // a total order with every thief's (load top → fence → load
        // bottom). Either the thief sees the decremented bottom (and
        // backs off) or the owner sees the thief's incremented top (and
        // concedes the element) — both losing the same element is
        // impossible.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Last element: race thieves for it with a CAS on `top`.
                // Success: SeqCst keeps the CAS inside the fence-ordered
                // protocol. Failure: Relaxed — we only learn we lost.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // Either way the deque is now empty at bottom = b + 1.
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if !won {
                    return None;
                }
                // SAFETY: the CAS advanced `top` past b, so no thief can
                // claim index b; slot b holds the initialised value we
                // pushed and is uniquely ours.
                return Some(unsafe { buf.read(b).assume_init() });
            }
            // More than one element left: index b is unreachable by
            // thieves (they claim from top < b), no CAS needed.
            // SAFETY: unique logical ownership of index b as argued,
            // and the owner's own push initialised it.
            Some(unsafe { buf.read(b).assume_init() })
        } else {
            // Deque was empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Doubles the buffer, copying the live window. Owner-only (called
    /// from `push`, which holds `&mut self`).
    fn grow(&self, b: isize, t: isize) {
        let inner = &*self.inner;
        let old_ptr = inner.buffer.load(Ordering::Relaxed);
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.cap() * 2);
        let new = unsafe { &*new_ptr };
        for i in t..b {
            // Bitwise copy; the old buffer keeps a stale copy that is
            // never dropped (it is retired below, and `Inner::drop`
            // frees retired buffers without touching their slots). A
            // thief that still holds the old buffer pointer reads the
            // same bits; whichever copy's index wins the `top` CAS is
            // the unique logical owner.
            unsafe { std::ptr::copy_nonoverlapping(old.slot(i), new.slot(i), 1) };
        }
        // Release: a thief that Acquires the new buffer pointer — or any
        // later `bottom` value published after this store — observes the
        // copied slots.
        inner.buffer.store(new_ptr, Ordering::Release);
        // The old buffer stays allocated until drop: thieves may hold
        // the stale pointer indefinitely. Doubling bounds the total
        // retired memory below one current-buffer's worth.
        inner.retired.lock().unwrap().push(old_ptr);
    }
}

impl<T> Stealer<T> {
    /// Steals a value from the top (the FIFO end).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        // Acquire: see every slot release that a previously completed
        // steal's CAS published (and keep this load before the fence).
        let t = inner.top.load(Ordering::Acquire);
        // SeqCst fence: pairs with the owner's fence in `pop` — see the
        // commentary there.
        fence(Ordering::SeqCst);
        // Acquire: synchronises with the owner's Release store in
        // `push`, making the pushed slot contents visible, and — because
        // the owner stores `buffer` *before* `bottom` on the grow path —
        // guarantees that if we read a bottom published after a grow, a
        // subsequent `buffer` load returns the grown buffer. Hence: if
        // the buffer we load below is stale, then `b` predates the grow,
        // so index `t` (< b ≤ bottom-at-grow) was copied and its old
        // slot still holds valid bits.
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Acquire: pairs with the Release store of the buffer pointer in
        // `grow`, so a fresh pointer comes with fully copied slots.
        let buf = unsafe { &*inner.buffer.load(Ordering::Acquire) };
        // Speculative bitwise copy, kept as `MaybeUninit`: we may be
        // racing the owner writing a *different* logical index into
        // this physical slot after a wrap, so the bits may be torn or
        // stale. No `T` is materialised here — `assume_init` happens
        // only after the CAS below confirms we own index `t`; on
        // failure the copy is simply abandoned (a `MaybeUninit` never
        // drops). This read-then-confirm shape is the standard
        // Chase–Lev technique, matching crossbeam's implementation.
        let value = unsafe { buf.read(t) };
        // SeqCst success: the CAS is the linearisation point of the
        // steal and must stay inside the fence-ordered protocol with the
        // owner's pop. Relaxed failure: we learn nothing but "retry".
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // SAFETY: winning the CAS from value `t` proves index t was
        // still unclaimed when we copied it — the owner cannot have
        // popped it (it would have moved `top`) nor recycled its slot
        // (a wrapping push requires `top` to have advanced) — so the
        // bits are the initialised value and exclusively ours.
        Steal::Success(unsafe { value.assume_init() })
    }

    /// Approximate number of queued items (racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// `true` when the racy snapshot sees no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> std::fmt::Debug for Deque<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deque").field("len", &self.len()).finish()
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn single_owner_lifo_semantics() {
        let mut d = Deque::new();
        assert!(d.is_empty());
        assert_eq!(d.pop(), None);
        for i in 0..100 {
            d.push(i);
        }
        assert_eq!(d.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(d.pop(), Some(i), "LIFO order");
        }
        assert_eq!(d.pop(), None);
        // Interleaved push/pop behaves like a stack.
        d.push(1);
        d.push(2);
        assert_eq!(d.pop(), Some(2));
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn stealer_takes_fifo_from_the_front() {
        let mut d = Deque::new();
        let s = d.stealer();
        assert_eq!(s.steal(), Steal::Empty);
        for i in 0..10 {
            d.push(i);
        }
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(d.pop(), Some(9), "owner still pops the back");
        assert_eq!(s.clone().steal(), Steal::Success(2), "clones share state");
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn buffer_growth_under_one_million_item_burst() {
        let mut d = Deque::new();
        const N: u64 = 1_000_000;
        for i in 0..N {
            d.push(i);
        }
        assert_eq!(d.len(), N as usize);
        // Steal a prefix, pop the rest; every item accounted for once.
        let s = d.stealer();
        let mut seen = 0u64;
        for expect in 0..1000 {
            assert_eq!(s.steal(), Steal::Success(expect));
            seen += 1;
        }
        while let Some(_v) = d.pop() {
            seen += 1;
        }
        assert_eq!(seen, N);
        assert!(d.is_empty());
    }

    #[test]
    fn drop_releases_queued_items_exactly_once() {
        // Arc strong counts prove no leak and no double-drop, across a
        // grow (stale copies in retired buffers must not be dropped).
        let probe = Arc::new(());
        {
            let mut d = Deque::new();
            for _ in 0..(MIN_CAP * 4) {
                d.push(Arc::clone(&probe));
            }
            assert_eq!(Arc::strong_count(&probe), MIN_CAP * 4 + 1);
            for _ in 0..3 {
                drop(d.pop().unwrap());
            }
            let s = d.stealer();
            match s.steal() {
                Steal::Success(v) => drop(v),
                other => panic!("expected steal success, got {other:?}"),
            }
            assert_eq!(Arc::strong_count(&probe), MIN_CAP * 4 + 1 - 4);
            // Remaining items dropped with the deque.
        }
        assert_eq!(Arc::strong_count(&probe), 1);
    }

    /// The satellite-task hammer: one owner churning push/pop while 1–7
    /// thieves steal, asserting every item is delivered exactly once
    /// (the observable face of steal linearizability).
    #[test]
    fn concurrent_steal_hammer_no_loss_no_duplication() {
        for thieves in [1usize, 2, 3, 7] {
            const ITEMS: u64 = 20_000;
            let mut d: Deque<u64> = Deque::new();
            let done = AtomicBool::new(false);
            let mut owner_got: Vec<u64> = Vec::new();
            let mut stolen: Vec<Vec<u64>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..thieves)
                    .map(|_| {
                        let s = d.stealer();
                        let done = &done;
                        scope.spawn(move || {
                            let mut got = Vec::new();
                            loop {
                                match s.steal() {
                                    Steal::Success(v) => got.push(v),
                                    Steal::Retry => std::hint::spin_loop(),
                                    Steal::Empty => {
                                        if done.load(Ordering::Acquire) && s.is_empty() {
                                            break;
                                        }
                                        std::thread::yield_now();
                                    }
                                }
                            }
                            got
                        })
                    })
                    .collect();
                // Owner: bursts of pushes with interleaved pops, so the
                // contended last-element CAS path gets exercised.
                let mut next = 0u64;
                while next < ITEMS {
                    for _ in 0..7 {
                        if next < ITEMS {
                            d.push(next);
                            next += 1;
                        }
                    }
                    for _ in 0..3 {
                        if let Some(v) = d.pop() {
                            owner_got.push(v);
                        }
                    }
                }
                while let Some(v) = d.pop() {
                    owner_got.push(v);
                }
                done.store(true, Ordering::Release);
                for h in handles {
                    stolen.push(h.join().unwrap());
                }
            });
            let mut all: Vec<u64> = owner_got;
            for s in stolen {
                all.extend(s);
            }
            assert_eq!(all.len(), ITEMS as usize, "{thieves} thieves: count");
            let set: HashSet<u64> = all.iter().copied().collect();
            assert_eq!(set.len(), ITEMS as usize, "{thieves} thieves: no dups");
            assert!(
                (0..ITEMS).all(|i| set.contains(&i)),
                "{thieves} thieves: no loss"
            );
        }
    }

    /// Steals observe FIFO order *among themselves*: a single thief's
    /// stolen sequence is strictly increasing when the owner only
    /// pushes (top only moves forward).
    #[test]
    fn single_thief_sees_monotone_sequence() {
        let mut d = Deque::new();
        for i in 0..10_000u64 {
            d.push(i);
        }
        let s = d.stealer();
        let thief = std::thread::spawn(move || {
            let mut prev = None;
            let mut n = 0;
            loop {
                match s.steal() {
                    Steal::Success(v) => {
                        if let Some(p) = prev {
                            assert!(v > p, "steals must be FIFO: {v} after {p}");
                        }
                        prev = Some(v);
                        n += 1;
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            }
            n
        });
        let mut popped = 0;
        while d.pop().is_some() {
            popped += 1;
        }
        let stolen = thief.join().unwrap();
        assert_eq!(stolen + popped, 10_000);
    }
}
