//! Search strategies: the scheduler that replaces the OS scheduler.
//!
//! "The snapshots are not scheduled by a traditional OS scheduler, but
//! instead by one of the various well-understood search strategies, such as
//! DFS, BFS or A*" (paper §1). A [`Strategy`] owns the frontier of
//! unevaluated candidate extension steps and decides which one runs next.
//!
//! Strategies never touch snapshots directly — they queue
//! [`ExtensionRef`]s, each of which holds one pending reference on its
//! parent snapshot in the engine's [`crate::snapshot::SnapshotTree`]. A
//! strategy that discards entries (memory-bounded search) must surface the
//! discarded references through [`Strategy::take_dropped`] so the engine
//! can release the snapshots.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::guest::GuessHint;
use crate::snapshot::SnapshotId;

/// One unevaluated candidate extension step: "simply a reference to their
/// parent partial candidate and the extension number" (paper §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtensionRef {
    /// The parent partial candidate.
    pub snapshot: SnapshotId,
    /// The extension number (delivered in `%rax`).
    pub index: u64,
    /// Depth of the parent candidate.
    pub depth: u64,
    /// Priority (f = g + h) for informed strategies; 0 otherwise.
    pub f: u64,
    /// Monotonic sequence number (tie-breaking, FIFO among equals).
    pub seq: u64,
}

/// A search strategy scheduling extension evaluation.
pub trait Strategy {
    /// Short human-readable name ("dfs", "bfs", ...).
    fn name(&self) -> &'static str;

    /// Called when a partial candidate `snap` with `n` extensions is
    /// created at `depth`. The strategy queues the extensions it wants
    /// evaluated later and may return `Some(i)` to direct the engine to
    /// continue *inline* with extension `i` (no snapshot restore) — the
    /// depth-first fast path.
    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64>;

    /// Pops the next extension to evaluate, or `None` when the search
    /// space is exhausted.
    fn next(&mut self) -> Option<ExtensionRef>;

    /// Entries currently queued.
    fn frontier_len(&self) -> usize;

    /// High-water mark of the frontier.
    fn peak_frontier(&self) -> usize;

    /// Extensions discarded by memory bounding since the last call
    /// (engine releases the snapshot references).
    fn take_dropped(&mut self) -> Vec<ExtensionRef> {
        Vec::new()
    }

    /// Total extensions ever discarded by memory bounding.
    fn total_dropped(&self) -> u64 {
        0
    }
}

fn f_of(hint: Option<&GuessHint>, depth: u64, i: u64) -> u64 {
    match hint {
        Some(h) => {
            h.g.saturating_add(h.h.get(i as usize).copied().unwrap_or(0))
        }
        None => depth,
    }
}

// ---------------------------------------------------------------------
// Depth-first search.
// ---------------------------------------------------------------------

/// LIFO strategy with the inline fast path: extension 0 continues without
/// a restore; siblings are pushed for later backtracking.
#[derive(Default)]
pub struct Dfs {
    stack: Vec<ExtensionRef>,
    seq: u64,
    peak: usize,
    no_inline: bool,
}

impl Dfs {
    /// Creates a DFS strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a DFS strategy with the inline fast path disabled: every
    /// extension — including extension 0 — is evaluated by restoring its
    /// parent snapshot. This is the ablation of the engine's "continue
    /// in place" optimisation (see the `ablations` bench).
    pub fn without_inline() -> Self {
        Dfs {
            no_inline: true,
            ..Dfs::default()
        }
    }
}

impl Strategy for Dfs {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        // Push siblings so extension 0 runs next (inline, or popped
        // first when the fast path is ablated).
        let queued_from = if self.no_inline { 0 } else { 1 };
        for i in (queued_from..n).rev() {
            self.seq += 1;
            self.stack.push(ExtensionRef {
                snapshot: snap,
                index: i,
                depth,
                f: f_of(hint, depth, i),
                seq: self.seq,
            });
        }
        self.peak = self.peak.max(self.stack.len());
        if self.no_inline {
            None
        } else {
            Some(0)
        }
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        self.stack.pop()
    }

    fn frontier_len(&self) -> usize {
        self.stack.len()
    }

    fn peak_frontier(&self) -> usize {
        self.peak
    }
}

// ---------------------------------------------------------------------
// Breadth-first search.
// ---------------------------------------------------------------------

/// FIFO strategy: evaluates all extensions at depth `d` before depth `d+1`.
/// No inline fast path — every evaluation restores a snapshot.
#[derive(Default)]
pub struct Bfs {
    queue: VecDeque<ExtensionRef>,
    seq: u64,
    peak: usize,
}

impl Bfs {
    /// Creates a BFS strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        for i in 0..n {
            self.seq += 1;
            self.queue.push_back(ExtensionRef {
                snapshot: snap,
                index: i,
                depth,
                f: f_of(hint, depth, i),
                seq: self.seq,
            });
        }
        self.peak = self.peak.max(self.queue.len());
        None
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        self.queue.pop_front()
    }

    fn frontier_len(&self) -> usize {
        self.queue.len()
    }

    fn peak_frontier(&self) -> usize {
        self.peak
    }
}

// ---------------------------------------------------------------------
// Best-first (A*).
// ---------------------------------------------------------------------

#[derive(PartialEq, Eq)]
struct HeapEntry(Reverse<(u64, u64)>, ExtensionRef);

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A*: pops the extension with the smallest `f = g + h(i)`, where `g` and
/// `h` come from the extended guess hint (`sys_guess_hint`). Without a
/// hint, `f` degrades to the depth, making this uniform-cost search.
#[derive(Default)]
pub struct BestFirst {
    heap: BinaryHeap<HeapEntry>,
    seq: u64,
    peak: usize,
}

impl BestFirst {
    /// Creates an A* strategy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Strategy for BestFirst {
    fn name(&self) -> &'static str {
        "astar"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        for i in 0..n {
            self.seq += 1;
            let f = f_of(hint, depth, i);
            let r = ExtensionRef {
                snapshot: snap,
                index: i,
                depth,
                f,
                seq: self.seq,
            };
            self.heap.push(HeapEntry(Reverse((f, self.seq)), r));
        }
        self.peak = self.peak.max(self.heap.len());
        None
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        self.heap.pop().map(|e| e.1)
    }

    fn frontier_len(&self) -> usize {
        self.heap.len()
    }

    fn peak_frontier(&self) -> usize {
        self.peak
    }
}

// ---------------------------------------------------------------------
// Memory-bounded best-first (SM-A* flavoured).
// ---------------------------------------------------------------------

/// Best-first search with a hard frontier capacity.
///
/// When the frontier exceeds `capacity`, the worst entries (largest `f`)
/// are discarded and reported through [`Strategy::take_dropped`] so the
/// engine can release their snapshots. This reproduces the *memory
/// behaviour* of SM-A* the paper cites (bounded live snapshots); the full
/// SM-A* value-backup/re-expansion machinery is intentionally out of
/// scope and noted in `DESIGN.md`.
pub struct SmaStar {
    inner: BestFirst,
    capacity: usize,
    dropped: Vec<ExtensionRef>,
    total_dropped: u64,
}

impl SmaStar {
    /// Creates a memory-bounded strategy keeping at most `capacity`
    /// frontier entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        SmaStar {
            inner: BestFirst::new(),
            capacity,
            dropped: Vec::new(),
            total_dropped: 0,
        }
    }

    fn enforce_bound(&mut self) {
        if self.inner.heap.len() <= self.capacity {
            return;
        }
        // Rebuild keeping the best `capacity` entries; report the rest.
        let mut entries: Vec<HeapEntry> = std::mem::take(&mut self.inner.heap).into_vec();
        entries.sort_by(|a, b| a.0.cmp(&b.0).reverse()); // ascending f
        for e in entries.drain(self.capacity..) {
            self.total_dropped += 1;
            self.dropped.push(e.1);
        }
        self.inner.heap = entries.into_iter().collect();
    }
}

impl Strategy for SmaStar {
    fn name(&self) -> &'static str {
        "sma-star"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        let r = self.inner.expand(snap, n, hint, depth);
        self.enforce_bound();
        r
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        self.inner.next()
    }

    fn frontier_len(&self) -> usize {
        self.inner.frontier_len()
    }

    fn peak_frontier(&self) -> usize {
        // The enforced bound *is* the peak by construction.
        self.inner.peak_frontier().min(self.capacity)
    }

    fn take_dropped(&mut self) -> Vec<ExtensionRef> {
        std::mem::take(&mut self.dropped)
    }

    fn total_dropped(&self) -> u64 {
        self.total_dropped
    }
}

// ---------------------------------------------------------------------
// Externally controlled strategy.
// ---------------------------------------------------------------------

/// The callback type an [`External`] scheduler consults.
pub type Chooser = Box<dyn FnMut(&[ExtensionRef]) -> Option<usize> + Send>;

/// A pull-based strategy where "an external entity can generate new
/// extension steps for any given partial candidates, and schedule their
/// execution" (paper §3.1).
///
/// The external entity is modelled as a chooser callback over the visible
/// pool of pending extensions.
pub struct External {
    pool: Vec<ExtensionRef>,
    chooser: Chooser,
    seq: u64,
    peak: usize,
}

impl External {
    /// Creates an externally controlled strategy with the given chooser.
    ///
    /// The chooser receives the current pool and returns the index of the
    /// extension to evaluate next (or `None` to stop the search early).
    pub fn new(chooser: impl FnMut(&[ExtensionRef]) -> Option<usize> + Send + 'static) -> Self {
        External {
            pool: Vec::new(),
            chooser: Box::new(chooser),
            seq: 0,
            peak: 0,
        }
    }
}

impl Strategy for External {
    fn name(&self) -> &'static str {
        "external"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        for i in 0..n {
            self.seq += 1;
            self.pool.push(ExtensionRef {
                snapshot: snap,
                index: i,
                depth,
                f: f_of(hint, depth, i),
                seq: self.seq,
            });
        }
        self.peak = self.peak.max(self.pool.len());
        None
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        if self.pool.is_empty() {
            return None;
        }
        let idx = (self.chooser)(&self.pool)?;
        if idx >= self.pool.len() {
            return None;
        }
        Some(self.pool.swap_remove(idx))
    }

    fn frontier_len(&self) -> usize {
        self.pool.len()
    }

    fn peak_frontier(&self) -> usize {
        self.peak
    }
}

// ---------------------------------------------------------------------
// Random frontier exploration.
// ---------------------------------------------------------------------

/// Uniform-random frontier pops (the randomised baseline used by the
/// symbolic-execution experiments). Deterministic for a given seed.
pub struct RandomWalk {
    pool: Vec<ExtensionRef>,
    rng: u64,
    seq: u64,
    peak: usize,
}

impl RandomWalk {
    /// Creates a random strategy from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            pool: Vec::new(),
            rng: seed.max(1),
            seq: 0,
            peak: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // Xorshift64: small, deterministic, dependency-free.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }
}

impl Strategy for RandomWalk {
    fn name(&self) -> &'static str {
        "random"
    }

    fn expand(
        &mut self,
        snap: SnapshotId,
        n: u64,
        hint: Option<&GuessHint>,
        depth: u64,
    ) -> Option<u64> {
        for i in 0..n {
            self.seq += 1;
            self.pool.push(ExtensionRef {
                snapshot: snap,
                index: i,
                depth,
                f: f_of(hint, depth, i),
                seq: self.seq,
            });
        }
        self.peak = self.peak.max(self.pool.len());
        None
    }

    fn next(&mut self) -> Option<ExtensionRef> {
        if self.pool.is_empty() {
            return None;
        }
        let idx = (self.next_rand() % self.pool.len() as u64) as usize;
        Some(self.pool.swap_remove(idx))
    }

    fn frontier_len(&self) -> usize {
        self.pool.len()
    }

    fn peak_frontier(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(n: u32) -> SnapshotId {
        SnapshotId(n)
    }

    #[test]
    fn dfs_inline_and_lifo_order() {
        let mut s = Dfs::new();
        assert_eq!(
            s.expand(snap(0), 3, None, 1),
            Some(0),
            "ext 0 continues inline"
        );
        assert_eq!(s.frontier_len(), 2);
        // After the inline branch dies, extension 1 of the same snapshot
        // comes first (true depth-first order).
        let e = s.next().unwrap();
        assert_eq!((e.snapshot, e.index), (snap(0), 1));
        // A deeper expand interleaves correctly.
        s.expand(snap(1), 2, None, 2);
        let e = s.next().unwrap();
        assert_eq!((e.snapshot, e.index), (snap(1), 1), "deepest first");
        let e = s.next().unwrap();
        assert_eq!((e.snapshot, e.index), (snap(0), 2));
        assert!(s.next().is_none());
        // Peak: 2 siblings of snap(0) queued at once (ext 0 ran inline).
        assert_eq!(s.peak_frontier(), 2);
    }

    #[test]
    fn bfs_fifo_order() {
        let mut s = Bfs::new();
        assert_eq!(s.expand(snap(0), 2, None, 1), None, "no inline fast path");
        s.expand(snap(1), 2, None, 2);
        let order: Vec<_> = std::iter::from_fn(|| s.next())
            .map(|e| (e.snapshot, e.index))
            .collect();
        assert_eq!(
            order,
            vec![(snap(0), 0), (snap(0), 1), (snap(1), 0), (snap(1), 1)],
            "strict FIFO"
        );
    }

    #[test]
    fn best_first_orders_by_f() {
        let mut s = BestFirst::new();
        let hint = GuessHint {
            g: 10,
            h: vec![5, 1, 3],
        };
        s.expand(snap(0), 3, Some(&hint), 1);
        let fs: Vec<u64> = std::iter::from_fn(|| s.next()).map(|e| e.f).collect();
        assert_eq!(fs, vec![11, 13, 15]);
    }

    #[test]
    fn best_first_without_hint_uses_depth() {
        let mut s = BestFirst::new();
        s.expand(snap(0), 1, None, 7);
        s.expand(snap(1), 1, None, 2);
        assert_eq!(s.next().unwrap().snapshot, snap(1), "shallower first");
    }

    #[test]
    fn best_first_fifo_tiebreak() {
        let mut s = BestFirst::new();
        s.expand(
            snap(0),
            2,
            Some(&GuessHint {
                g: 5,
                h: vec![0, 0],
            }),
            1,
        );
        assert_eq!(s.next().unwrap().index, 0, "equal f: insertion order");
        assert_eq!(s.next().unwrap().index, 1);
    }

    #[test]
    fn sma_star_bounds_frontier_and_reports_drops() {
        let mut s = SmaStar::new(3);
        let hint = GuessHint {
            g: 0,
            h: vec![1, 2, 3, 4, 5],
        };
        s.expand(snap(0), 5, Some(&hint), 1);
        assert_eq!(s.frontier_len(), 3, "bounded at capacity");
        let dropped = s.take_dropped();
        assert_eq!(dropped.len(), 2);
        // Worst f values were dropped.
        let mut dropped_f: Vec<u64> = dropped.iter().map(|e| e.f).collect();
        dropped_f.sort_unstable();
        assert_eq!(dropped_f, vec![4, 5]);
        assert_eq!(s.total_dropped(), 2);
        // Remaining pops come out best-first.
        let fs: Vec<u64> = std::iter::from_fn(|| s.next()).map(|e| e.f).collect();
        assert_eq!(fs, vec![1, 2, 3]);
        // take_dropped drains.
        assert!(s.take_dropped().is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn sma_star_zero_capacity_panics() {
        let _ = SmaStar::new(0);
    }

    #[test]
    fn external_chooser_controls_order() {
        // The "external entity" always picks the newest extension.
        let mut s = External::new(|pool| Some(pool.len() - 1));
        s.expand(snap(0), 3, None, 1);
        assert_eq!(s.next().unwrap().index, 2);
        assert_eq!(s.next().unwrap().index, 1);
        // A chooser returning None stops the search.
        let mut s = External::new(|_| None);
        s.expand(snap(0), 2, None, 1);
        assert!(s.next().is_none());
        assert_eq!(s.frontier_len(), 2, "pool intact after refusal");
    }

    #[test]
    fn random_walk_deterministic_and_complete() {
        let run = |seed| {
            let mut s = RandomWalk::new(seed);
            s.expand(snap(0), 8, None, 1);
            std::iter::from_fn(|| s.next())
                .map(|e| e.index)
                .collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..8).collect::<Vec<_>>(),
            "every extension visited once"
        );
        assert_ne!(run(1), run(99), "different seeds differ (overwhelmingly)");
    }
}
