//! Re-execution backtracking: the no-snapshot baseline.
//!
//! The paper argues snapshots beat ad-hoc alternatives. One such
//! alternative — common in symbolic-execution engines without state
//! forking — is *replay*: to evaluate a different extension of some
//! earlier decision point, re-run the whole program from the start and
//! feed it the recorded decision prefix. Cost per backtrack is
//! O(path length) instead of O(pages touched).
//!
//! This module gives host closures `sys_guess`-style semantics with exactly
//! that strategy, serving two roles:
//!
//! 1. the comparison baseline in experiment E6 (snapshot forking vs
//!    re-execution);
//! 2. a convenient host-side API for small search problems that do not
//!    need guest isolation.

/// The decision interface a replayed closure sees.
pub struct ReplayCtx<'a> {
    prefix: &'a [u64],
    pos: usize,
    trail: Vec<(u64, u64)>, // (chosen, domain size)
    outputs: Vec<Vec<u8>>,
}

/// Outcome of one replayed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The path reached a solution.
    Solution,
    /// The path hit a contradiction (`sys_guess_fail` equivalent).
    Failed,
}

impl ReplayCtx<'_> {
    /// The `sys_guess` equivalent: returns a value in `0..n`.
    ///
    /// Within the recorded prefix the stored decision is returned;
    /// beyond it, extension 0 is chosen (depth-first order).
    pub fn guess(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "guess domain must be non-empty");
        let choice = if self.pos < self.prefix.len() {
            self.prefix[self.pos]
        } else {
            0
        };
        self.pos += 1;
        self.trail.push((choice, n));
        choice
    }

    /// Records output for the current path (delivered only if the path
    /// ends in [`Outcome::Solution`], mirroring contained side effects).
    pub fn emit(&mut self, data: impl Into<Vec<u8>>) {
        self.outputs.push(data.into());
    }
}

/// Statistics from a replay-based search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Complete re-executions performed.
    pub executions: u64,
    /// Total guesses made across all executions (re-done work).
    pub total_guesses: u64,
    /// Solutions found.
    pub solutions: u64,
    /// Failed paths.
    pub failures: u64,
}

/// Result of [`replay_dfs`].
#[derive(Debug, Default)]
pub struct ReplayResult {
    /// Counters.
    pub stats: ReplayStats,
    /// Output of every solution path, in discovery order.
    pub solutions: Vec<Vec<u8>>,
}

/// Depth-first search over a closure's decision space by re-execution.
///
/// `f` is run repeatedly; each run follows a decision prefix and extends
/// it depth-first. `max_solutions` bounds the enumeration (`None` =
/// exhaustive). The closure must be deterministic given its guesses.
pub fn replay_dfs(
    mut f: impl FnMut(&mut ReplayCtx<'_>) -> Outcome,
    max_solutions: Option<u64>,
) -> ReplayResult {
    let mut result = ReplayResult::default();
    // The current decision prefix to replay, as (choice, domain) pairs.
    let mut prefix: Vec<(u64, u64)> = Vec::new();
    loop {
        let choices: Vec<u64> = prefix.iter().map(|&(c, _)| c).collect();
        let mut ctx = ReplayCtx {
            prefix: &choices,
            pos: 0,
            trail: Vec::new(),
            outputs: Vec::new(),
        };
        let outcome = f(&mut ctx);
        result.stats.executions += 1;
        result.stats.total_guesses += ctx.trail.len() as u64;
        match outcome {
            Outcome::Solution => {
                result.stats.solutions += 1;
                result.solutions.push(ctx.outputs.concat());
                if let Some(max) = max_solutions {
                    if result.stats.solutions >= max {
                        return result;
                    }
                }
            }
            Outcome::Failed => result.stats.failures += 1,
        }
        // Advance the trail depth-first: increment the deepest decision
        // that still has untried extensions, dropping everything below.
        prefix = ctx.trail;
        loop {
            match prefix.pop() {
                Some((choice, domain)) if choice + 1 < domain => {
                    prefix.push((choice + 1, domain));
                    break;
                }
                Some(_) => continue,
                None => return result,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_binary_tree() {
        // Depth-2 binary decisions: 4 paths, all solutions.
        let result = replay_dfs(
            |ctx| {
                let a = ctx.guess(2);
                let b = ctx.guess(2);
                ctx.emit(format!("{a}{b}"));
                Outcome::Solution
            },
            None,
        );
        assert_eq!(result.stats.solutions, 4);
        assert_eq!(result.stats.executions, 4);
        let paths: Vec<String> = result
            .solutions
            .iter()
            .map(|s| String::from_utf8_lossy(s).into_owned())
            .collect();
        assert_eq!(paths, vec!["00", "01", "10", "11"], "depth-first order");
    }

    #[test]
    fn failed_paths_drop_output() {
        let result = replay_dfs(
            |ctx| {
                let x = ctx.guess(3);
                ctx.emit(format!("saw {x}"));
                if x == 1 {
                    Outcome::Solution
                } else {
                    Outcome::Failed
                }
            },
            None,
        );
        assert_eq!(result.stats.solutions, 1);
        assert_eq!(result.stats.failures, 2);
        assert_eq!(result.solutions, vec![b"saw 1".to_vec()]);
    }

    #[test]
    fn variable_domain_sizes() {
        // Guess domain depends on earlier guesses.
        let result = replay_dfs(
            |ctx| {
                let a = ctx.guess(2);
                let b = ctx.guess(a + 1); // domain 1 or 2
                ctx.emit(format!("({a},{b})"));
                Outcome::Solution
            },
            None,
        );
        // a=0 → b in {0}; a=1 → b in {0,1}: 3 paths total.
        assert_eq!(result.stats.solutions, 3);
    }

    #[test]
    fn solution_limit() {
        let result = replay_dfs(
            |ctx| {
                ctx.guess(2);
                ctx.guess(2);
                Outcome::Solution
            },
            Some(2),
        );
        assert_eq!(result.stats.solutions, 2);
        assert_eq!(result.stats.executions, 2);
    }

    #[test]
    fn reexecution_cost_grows_with_depth() {
        // The defining inefficiency: total guesses ≈ paths × depth,
        // i.e. every backtrack redoes the whole path.
        let depth = 10u64;
        let result = replay_dfs(
            |ctx| {
                for _ in 0..depth {
                    ctx.guess(2);
                }
                Outcome::Failed
            },
            None,
        );
        assert_eq!(result.stats.executions, 1 << depth);
        assert_eq!(result.stats.total_guesses, (1 << depth) * depth);
    }

    #[test]
    fn nqueens_via_replay() {
        // The Fig. 1 program shape, executed by replay: N=6 has 4
        // solutions.
        let n = 6usize;
        let result = replay_dfs(
            |ctx| {
                let mut col = vec![false; n];
                let mut diag1 = vec![false; 2 * n];
                let mut diag2 = vec![false; 2 * n];
                for c in 0..n {
                    let r = ctx.guess(n as u64) as usize;
                    if col[r] || diag1[r + c] || diag2[n + r - c] {
                        return Outcome::Failed;
                    }
                    col[r] = true;
                    diag1[r + c] = true;
                    diag2[n + r - c] = true;
                }
                Outcome::Solution
            },
            None,
        );
        assert_eq!(result.stats.solutions, 4);
    }
}
