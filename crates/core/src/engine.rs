//! The backtracking engine: the libOS scheduler loop of paper §4.
//!
//! "The libOS's scheduler selects the next unevaluated extension, restores
//! the lightweight snapshot, sets the extension number into `%rax`, and
//! resumes execution at ring 3." — that sentence is this module's main
//! loop, with the [`crate::strategy::Strategy`] choosing the next
//! extension and the [`crate::snapshot::SnapshotTree`] holding the live
//! partial candidates.
//!
//! The engine adds one optimisation the paper implies for DFS: when the
//! strategy's [`expand`](crate::strategy::Strategy::expand) elects an
//! inline extension, the current (already materialised) state continues
//! directly — no restore. Backtracking to any *other* extension restores
//! its parent snapshot in O(1).

use crate::guest::{Exit, Guest, GuestFault, GuestState};
use crate::registers::Reg;
use crate::snapshot::{Snapshot, SnapshotId, SnapshotTree};
use crate::strategy::Strategy;

/// Hard cap on guess fan-out (a guess larger than this is a guest bug).
pub const MAX_FANOUT: u64 = 1 << 20;

/// What to do when a guest faults mid-extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Treat the fault like `sys_guess_fail`: discard the path, continue
    /// the search (the default — faults are dead branches).
    #[default]
    FailPath,
    /// Abort the whole search, reporting the fault.
    Abort,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Stop after this many solutions (`sys_emit` calls).
    pub max_solutions: Option<u64>,
    /// Stop after evaluating this many extension steps.
    pub max_extensions: Option<u64>,
    /// Fault handling policy.
    pub fault_policy: FaultPolicy,
    /// Echo guest console output to the host's stdout/stderr as it
    /// arrives (in addition to the transcript).
    pub echo_output: bool,
    /// Ablation: pin every snapshot instead of reclaiming it when its
    /// last pending extension is consumed. Peak memory then grows with
    /// the whole search tree — the behaviour the paper's "rapid creation
    /// (and destruction) of snapshot trees" avoids.
    pub keep_all_snapshots: bool,
}

/// Counters describing one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Extension steps evaluated (root counts as one).
    pub extensions_evaluated: u64,
    /// Snapshots captured.
    pub snapshots_created: u64,
    /// High-water mark of live snapshots.
    pub snapshots_peak: usize,
    /// Snapshot restores (materialisations from the tree).
    pub restores: u64,
    /// Inline depth-first continuations (no restore needed).
    pub inline_continues: u64,
    /// `sys_guess_fail` events.
    pub failures: u64,
    /// Normal guest exits.
    pub exits: u64,
    /// Guest faults.
    pub faults: u64,
    /// Solutions emitted.
    pub solutions: u64,
    /// High-water mark of the strategy frontier.
    pub frontier_peak: usize,
    /// Extensions discarded by memory-bounded strategies.
    pub dropped_extensions: u64,
}

/// A solution event (`sys_emit`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// 0-based solution index in discovery order.
    pub index: u64,
    /// Guess depth of the emitting path.
    pub depth: u64,
    /// Transcript length at emission; `transcript[prev..here]` is the
    /// output this path produced since the previous solution.
    pub transcript_mark: usize,
}

/// Why the run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StopReason {
    /// Every extension was evaluated; the search space is exhausted.
    Exhausted,
    /// The configured solution limit was reached.
    SolutionLimit,
    /// The configured extension budget was exhausted.
    ExtensionBudget,
    /// A guest fault aborted the run (`FaultPolicy::Abort`).
    Aborted(GuestFault),
}

/// The result of one engine run.
#[derive(Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Run counters.
    pub stats: EngineStats,
    /// Concatenated guest console output (write-through channel).
    pub transcript: Vec<u8>,
    /// Solutions in discovery order.
    pub solutions: Vec<Solution>,
    /// Exit codes of paths that terminated via `exit`.
    pub exit_codes: Vec<i64>,
}

impl RunResult {
    /// The transcript as lossy UTF-8 (convenience for tests/examples).
    pub fn transcript_str(&self) -> String {
        String::from_utf8_lossy(&self.transcript).into_owned()
    }

    /// The output produced between solution `i-1` and solution `i`.
    pub fn solution_output(&self, i: usize) -> &[u8] {
        let end = self.solutions[i].transcript_mark;
        let start = if i == 0 {
            0
        } else {
            self.solutions[i - 1].transcript_mark
        };
        &self.transcript[start..end]
    }
}

/// The system-level backtracking engine.
pub struct Engine<S: Strategy> {
    strategy: S,
    config: EngineConfig,
}

impl<S: Strategy> Engine<S> {
    /// Creates an engine with the given strategy and default config.
    pub fn new(strategy: S) -> Self {
        Engine {
            strategy,
            config: EngineConfig::default(),
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(strategy: S, config: EngineConfig) -> Self {
        Engine { strategy, config }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `guest` from `root` until the search space is exhausted or a
    /// configured limit is hit.
    pub fn run(&mut self, guest: &mut dyn Guest, root: GuestState) -> RunResult {
        let mut tree = SnapshotTree::new();
        let mut stats = EngineStats::default();
        let mut transcript: Vec<u8> = Vec::new();
        let mut solutions: Vec<Solution> = Vec::new();
        let mut exit_codes: Vec<i64> = Vec::new();

        // The currently executing state, if any, and the snapshot it was
        // materialised from (its parent candidate).
        let mut current: Option<(GuestState, Option<SnapshotId>)> = Some((root, None));
        let stop;

        'outer: loop {
            let (mut state, parent) = match current.take() {
                Some(live) => live,
                None => match self.strategy.next() {
                    Some(ext) => {
                        let snap = tree
                            .get(ext.snapshot)
                            .expect("queued snapshot must be live");
                        let mut st = snap.materialize();
                        st.regs.set(Reg::Rax, ext.index);
                        stats.restores += 1;
                        let pid = ext.snapshot;
                        tree.release(pid);
                        (st, Some(pid))
                    }
                    None => {
                        stop = StopReason::Exhausted;
                        break 'outer;
                    }
                },
            };

            if let Some(max) = self.config.max_extensions {
                if stats.extensions_evaluated >= max {
                    stop = StopReason::ExtensionBudget;
                    break 'outer;
                }
            }
            stats.extensions_evaluated += 1;

            // Inner loop: resume the same extension step across non-path
            // exits (console output, emitted solutions).
            loop {
                match guest.resume(&mut state) {
                    Exit::Output { fd, data } => {
                        if self.config.echo_output {
                            use std::io::Write as _;
                            if fd == 2 {
                                let _ = std::io::stderr().write_all(&data);
                            } else {
                                let _ = std::io::stdout().write_all(&data);
                            }
                        }
                        transcript.extend_from_slice(&data);
                        // Keep executing the same extension step.
                    }
                    Exit::Emit => {
                        let sol = Solution {
                            index: stats.solutions,
                            depth: state.depth,
                            transcript_mark: transcript.len(),
                        };
                        stats.solutions += 1;
                        solutions.push(sol);
                        if let Some(max) = self.config.max_solutions {
                            if stats.solutions >= max {
                                stop = StopReason::SolutionLimit;
                                break 'outer;
                            }
                        }
                    }
                    Exit::Guess { n, hint } => {
                        if n == 0 {
                            stats.failures += 1;
                            break;
                        }
                        if n > MAX_FANOUT {
                            stats.faults += 1;
                            match self.config.fault_policy {
                                FaultPolicy::FailPath => break,
                                FaultPolicy::Abort => {
                                    stop = StopReason::Aborted(GuestFault::Other(format!(
                                        "guess fan-out {n} exceeds MAX_FANOUT"
                                    )));
                                    break 'outer;
                                }
                            }
                        }
                        state.depth += 1;
                        if let Some(h) = &hint {
                            state.gcost = h.g;
                        }
                        let snap = Snapshot::capture(&state, parent);
                        let id = tree.insert(snap, n as u32);
                        if self.config.keep_all_snapshots {
                            tree.pin(id);
                        }
                        stats.snapshots_created += 1;
                        let inline = self.strategy.expand(id, n, hint.as_ref(), state.depth);
                        for dropped in self.strategy.take_dropped() {
                            tree.release(dropped.snapshot);
                            stats.dropped_extensions += 1;
                        }
                        match inline {
                            Some(ext) => {
                                // Depth-first fast path: continue in place.
                                state.regs.set(Reg::Rax, ext);
                                tree.release(id);
                                stats.inline_continues += 1;
                                current = Some((state, Some(id)));
                            }
                            None => {
                                // The strategy queued everything; the next
                                // iteration restores whichever it picks.
                            }
                        }
                        continue 'outer;
                    }
                    Exit::Fail => {
                        stats.failures += 1;
                        break;
                    }
                    Exit::Exit { code } => {
                        stats.exits += 1;
                        exit_codes.push(code);
                        break;
                    }
                    Exit::Fault(fault) => {
                        stats.faults += 1;
                        match self.config.fault_policy {
                            FaultPolicy::FailPath => break,
                            FaultPolicy::Abort => {
                                stop = StopReason::Aborted(fault);
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }

        stats.snapshots_peak = tree.peak_live();
        stats.snapshots_created = tree.total_created();
        stats.frontier_peak = self.strategy.peak_frontier();
        stats.dropped_extensions = self.strategy.total_dropped();
        RunResult {
            stop,
            stats,
            transcript,
            solutions,
            exit_codes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest::GuessHint;
    use crate::strategy::{BestFirst, Bfs, Dfs, SmaStar};
    use lwsnap_mem::{Prot, RegionKind, PAGE_SIZE};

    /// A scripted guest that enumerates bit strings of length `depth` and
    /// emits those whose value (big-endian bits) is odd.
    ///
    /// It is a state machine over guest memory: phase in `rbx`, collected
    /// bits at 0x1000.., bit count in `rcx`.
    struct BitGuest {
        depth: u64,
    }

    const PHASE_START: u64 = 0;
    const PHASE_AFTER_GUESS: u64 = 1;

    impl Guest for BitGuest {
        fn resume(&mut self, st: &mut GuestState) -> Exit {
            loop {
                let phase = st.regs.get(Reg::Rbx);
                let count = st.regs.get(Reg::Rcx);
                match phase {
                    PHASE_START => {
                        if count == self.depth {
                            // Compute value, emit if odd, then fail back.
                            let mut value = 0u64;
                            for i in 0..self.depth {
                                value = value << 1 | st.mem.read_u8(0x1000 + i).unwrap() as u64;
                            }
                            if value % 2 == 1 {
                                // Print it, then emit.
                                st.regs.set(Reg::Rbx, 2);
                                return Exit::Output {
                                    fd: 1,
                                    data: format!("{value} ").into_bytes(),
                                };
                            }
                            return Exit::Fail;
                        }
                        st.regs.set(Reg::Rbx, PHASE_AFTER_GUESS);
                        return Exit::Guess { n: 2, hint: None };
                    }
                    PHASE_AFTER_GUESS => {
                        let bit = st.regs.get(Reg::Rax) as u8;
                        st.mem.write_u8(0x1000 + count, bit).unwrap();
                        st.regs.set(Reg::Rcx, count + 1);
                        st.regs.set(Reg::Rbx, PHASE_START);
                    }
                    2 => {
                        st.regs.set(Reg::Rbx, 3);
                        return Exit::Emit;
                    }
                    3 => return Exit::Fail,
                    _ => unreachable!(),
                }
            }
        }
    }

    fn bit_root() -> GuestState {
        let mut st = GuestState::new();
        st.mem
            .map_fixed(0x1000, PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "bits")
            .unwrap();
        st
    }

    #[test]
    fn dfs_enumerates_all_odd_bitstrings() {
        let mut engine = Engine::new(Dfs::new());
        let result = engine.run(&mut BitGuest { depth: 4 }, bit_root());
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(result.stats.solutions, 8, "half of 16 bit strings are odd");
        // DFS explores extension 0 (bit 0) first: ascending order.
        assert_eq!(result.transcript_str(), "1 3 5 7 9 11 13 15 ");
        // 15 internal guesses for a complete binary tree of depth 4.
        assert_eq!(result.stats.snapshots_created, 15);
        // DFS uses the inline fast path for extension 0 everywhere.
        assert_eq!(result.stats.inline_continues, 15);
        assert_eq!(result.stats.restores, 15, "one restore per right branch");
        // All snapshots reclaimed by the end.
        assert_eq!(
            result.stats.failures,
            8 + 8,
            "even leaves + post-emit fails"
        );
    }

    #[test]
    fn bfs_finds_same_solutions_different_order() {
        let mut engine = Engine::new(Bfs::new());
        let result = engine.run(&mut BitGuest { depth: 3 }, bit_root());
        assert_eq!(result.stats.solutions, 4);
        let mut nums: Vec<u64> = result
            .transcript_str()
            .split_whitespace()
            .map(|s| s.parse().unwrap())
            .collect();
        nums.sort_unstable();
        assert_eq!(nums, vec![1, 3, 5, 7]);
        assert_eq!(result.stats.inline_continues, 0, "BFS has no fast path");
        // BFS frontier peak is the width of the last level.
        assert!(result.stats.frontier_peak >= 8);
    }

    #[test]
    fn dfs_frontier_smaller_than_bfs() {
        let run = |strategy: Box<dyn Strategy>| {
            let mut engine = Engine::new(BoxedStrategy(strategy));
            engine.run(&mut BitGuest { depth: 6 }, bit_root()).stats
        };
        struct BoxedStrategy(Box<dyn Strategy>);
        impl Strategy for BoxedStrategy {
            fn name(&self) -> &'static str {
                self.0.name()
            }
            fn expand(
                &mut self,
                snap: crate::snapshot::SnapshotId,
                n: u64,
                hint: Option<&GuessHint>,
                depth: u64,
            ) -> Option<u64> {
                self.0.expand(snap, n, hint, depth)
            }
            fn next(&mut self) -> Option<crate::strategy::ExtensionRef> {
                self.0.next()
            }
            fn frontier_len(&self) -> usize {
                self.0.frontier_len()
            }
            fn peak_frontier(&self) -> usize {
                self.0.peak_frontier()
            }
        }
        let dfs = run(Box::new(Dfs::new()));
        let bfs = run(Box::new(Bfs::new()));
        assert_eq!(dfs.solutions, bfs.solutions);
        assert!(
            dfs.frontier_peak < bfs.frontier_peak,
            "DFS frontier {} must be below BFS {}",
            dfs.frontier_peak,
            bfs.frontier_peak
        );
        assert!(dfs.snapshots_peak <= bfs.snapshots_peak);
    }

    #[test]
    fn solution_limit_stops_early() {
        let config = EngineConfig {
            max_solutions: Some(2),
            ..Default::default()
        };
        let mut engine = Engine::with_config(Dfs::new(), config);
        let result = engine.run(&mut BitGuest { depth: 4 }, bit_root());
        assert_eq!(result.stop, StopReason::SolutionLimit);
        assert_eq!(result.stats.solutions, 2);
        assert_eq!(result.transcript_str(), "1 3 ");
        assert_eq!(result.solution_output(0), b"1 ");
        assert_eq!(result.solution_output(1), b"3 ");
    }

    #[test]
    fn extension_budget_stops_early() {
        let config = EngineConfig {
            max_extensions: Some(5),
            ..Default::default()
        };
        let mut engine = Engine::with_config(Bfs::new(), config);
        let result = engine.run(&mut BitGuest { depth: 10 }, bit_root());
        assert_eq!(result.stop, StopReason::ExtensionBudget);
        assert_eq!(result.stats.extensions_evaluated, 5);
    }

    /// Guest whose first action faults.
    struct FaultingGuest;
    impl Guest for FaultingGuest {
        fn resume(&mut self, st: &mut GuestState) -> Exit {
            if st.depth == 0 && st.regs.get(Reg::Rbx) == 0 {
                st.regs.set(Reg::Rbx, 1);
                return Exit::Guess { n: 2, hint: None };
            }
            Exit::Fault(GuestFault::IllegalInstruction { rip: 0xbad })
        }
    }

    #[test]
    fn fault_policy_fail_path_continues() {
        let mut engine = Engine::new(Dfs::new());
        let result = engine.run(&mut FaultingGuest, GuestState::new());
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(result.stats.faults, 2, "both branches faulted");
    }

    #[test]
    fn fault_policy_abort_stops() {
        let config = EngineConfig {
            fault_policy: FaultPolicy::Abort,
            ..Default::default()
        };
        let mut engine = Engine::with_config(Dfs::new(), config);
        let result = engine.run(&mut FaultingGuest, GuestState::new());
        assert_eq!(
            result.stop,
            StopReason::Aborted(GuestFault::IllegalInstruction { rip: 0xbad })
        );
    }

    /// A weighted search guest: walks a depth-3 binary tree where move 0
    /// costs 3 and move 1 costs 1, reporting each leaf it reaches. With
    /// guess hints (`g` = path cost, `h(i)` = move cost) best-first must
    /// reach the all-ones leaf first.
    struct WeightedGuest;
    impl Guest for WeightedGuest {
        fn resume(&mut self, st: &mut GuestState) -> Exit {
            loop {
                let phase = st.regs.get(Reg::Rbx);
                let depth = st.regs.get(Reg::Rcx);
                match phase {
                    // Apply the move chosen by the last guess.
                    1 => {
                        let choice = st.regs.get(Reg::Rax);
                        let cost = if choice == 0 { 3 } else { 1 };
                        st.regs.set(Reg::R12, st.regs.get(Reg::R12) + cost);
                        st.regs.set(Reg::R13, st.regs.get(Reg::R13) << 1 | choice);
                        st.regs.set(Reg::Rcx, depth + 1);
                        st.regs.set(Reg::Rbx, 0);
                    }
                    // Printed already: backtrack.
                    3 => return Exit::Fail,
                    // At a node: leaf → print; else guess the next move.
                    _ => {
                        if depth == 3 {
                            let path = st.regs.get(Reg::R13);
                            let total = st.regs.get(Reg::R12);
                            st.regs.set(Reg::Rbx, 3);
                            return Exit::Output {
                                fd: 1,
                                data: format!("path={path:03b} cost={total};").into_bytes(),
                            };
                        }
                        st.regs.set(Reg::Rbx, 1);
                        let g = st.regs.get(Reg::R12);
                        return Exit::Guess {
                            n: 2,
                            hint: Some(GuessHint { g, h: vec![3, 1] }),
                        };
                    }
                }
            }
        }
    }

    #[test]
    fn best_first_visits_cheapest_first() {
        let mut engine = Engine::new(BestFirst::new());
        let result = engine.run(&mut WeightedGuest, GuestState::new());
        let t = result.transcript_str();
        let first = t.split(';').next().unwrap();
        // Greedy-cheapest path is 111 (cost 3+10=13 at the leaf), but A*
        // reaches *a* leaf guided by f; the first completed leaf must be
        // one reached through minimal f, which is 111's prefix... the
        // point of the test: the very first reported leaf is the one the
        // heuristic steers to (f-minimal), not DFS order 000.
        assert!(
            first.contains("path=111"),
            "best-first followed the h-minimal edges: {t}"
        );
        assert_eq!(result.stats.exits, 0);
        assert_eq!(result.stats.solutions, 0, "this guest only prints");
    }

    #[test]
    fn sma_star_bounds_live_snapshots() {
        let mut wide = Engine::new(BestFirst::new());
        let wide_stats = wide.run(&mut BitGuest { depth: 8 }, bit_root()).stats;
        let mut bounded = Engine::new(SmaStar::new(16));
        let bounded_result = bounded.run(&mut BitGuest { depth: 8 }, bit_root());
        assert!(
            bounded_result.stats.frontier_peak <= 16,
            "frontier bounded: {}",
            bounded_result.stats.frontier_peak
        );
        assert!(
            wide_stats.frontier_peak > 16,
            "unbounded frontier exceeds the cap"
        );
        assert!(
            bounded_result.stats.dropped_extensions > 0,
            "bounding dropped work"
        );
        assert!(
            bounded_result.stats.solutions < wide_stats.solutions,
            "dropped subtrees mean missed solutions (the SM-A* trade-off)"
        );
    }

    #[test]
    fn snapshots_all_reclaimed_after_exhaustion() {
        let mut engine = Engine::new(Dfs::new());
        let result = engine.run(&mut BitGuest { depth: 5 }, bit_root());
        // created == reclaimed is implied by peak tracking + exhaustion;
        // verify via stats: peak well below total.
        assert!(result.stats.snapshots_peak as u64 <= result.stats.snapshots_created);
        assert!(
            result.stats.snapshots_peak <= 6,
            "DFS keeps O(depth) snapshots live"
        );
    }
}
