//! System-call interposition: the libOS boundary of an extension step.
//!
//! Every syscall issued by guest code passes through [`handle_syscall`].
//! The handler implements the paper's containment policy (§3.1, §5): all
//! visible side effects of a candidate extension step must stay inside the
//! step. File mutations go to the branch's CoW [`lwsnap_fs::FsView`];
//! address-space calls are contained by the snapshotted
//! [`lwsnap_mem::AddressSpace`] itself; console writes are *selectively*
//! passed through to the engine transcript (write-only, order-preserving —
//! the channel Fig. 1 prints its answers on); everything else fails, since
//! "making the interposition logic complete does not appear tractable" —
//! the sound-but-incomplete stance of §5.
//!
//! The ABI mirrors Linux x86-64: syscall number in `%rax`, arguments in
//! `%rdi %rsi %rdx %r10 %r8 %r9`, return value (or negative errno) in
//! `%rax`. The paper's three new system calls occupy a private number
//! range (≥ 1000).

use lwsnap_fs::{FsError, OpenFlags};
use lwsnap_mem::{MemError, Prot};

use crate::guest::{Exit, GuessHint, GuestFault, GuestState};
use crate::registers::Reg;

/// Syscall numbers understood by the libOS.
///
/// Linux x86-64 numbers for the POSIX subset, a private range for the
/// paper's backtracking calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Sysno {
    /// `read(fd, buf, count)`.
    Read = 0,
    /// `write(fd, buf, count)`.
    Write = 1,
    /// `open(path, flags)`.
    Open = 2,
    /// `close(fd)`.
    Close = 3,
    /// `fstat(fd, buf)` (simplified stat layout, see [`STAT_SIZE`]).
    Fstat = 5,
    /// `lseek(fd, offset, whence)`.
    Lseek = 8,
    /// `mmap(addr, len, prot, flags, fd, off)` — anonymous only.
    Mmap = 9,
    /// `mprotect(addr, len, prot)`.
    Mprotect = 10,
    /// `munmap(addr, len)`.
    Munmap = 11,
    /// `brk(addr)`.
    Brk = 12,
    /// `exit(code)`.
    Exit = 60,
    /// `ftruncate(fd, len)`.
    Ftruncate = 77,
    /// `mkdir(path, mode)`.
    Mkdir = 83,
    /// `unlink(path)`.
    Unlink = 87,
    /// `sys_guess(n)` — the paper's guessing call.
    Guess = 1000,
    /// `sys_guess_fail()` — backtrack; never returns.
    GuessFail = 1001,
    /// `sys_guess_strategy(id)` — validate/announce the search strategy.
    GuessStrategy = 1002,
    /// `sys_emit()` — declare the current path a solution.
    Emit = 1003,
    /// `sys_guess_hint(n, g, h_ptr)` — extended guess with A* distances.
    GuessHint = 1004,
    /// `sys_putint(v)` — write a decimal integer to stdout (guest printf
    /// convenience).
    Putint = 1005,
}

impl Sysno {
    /// Decodes a syscall number.
    pub fn from_u64(nr: u64) -> Option<Sysno> {
        Some(match nr {
            0 => Sysno::Read,
            1 => Sysno::Write,
            2 => Sysno::Open,
            3 => Sysno::Close,
            5 => Sysno::Fstat,
            8 => Sysno::Lseek,
            9 => Sysno::Mmap,
            10 => Sysno::Mprotect,
            11 => Sysno::Munmap,
            12 => Sysno::Brk,
            60 => Sysno::Exit,
            77 => Sysno::Ftruncate,
            83 => Sysno::Mkdir,
            87 => Sysno::Unlink,
            1000 => Sysno::Guess,
            1001 => Sysno::GuessFail,
            1002 => Sysno::GuessStrategy,
            1003 => Sysno::Emit,
            1004 => Sysno::GuessHint,
            1005 => Sysno::Putint,
            _ => return None,
        })
    }
}

/// Size of the simplified `fstat` buffer the libOS writes.
///
/// Layout: `u64 inode`, `u64 kind` (0 = file, 1 = dir), `u64 size`.
pub const STAT_SIZE: u64 = 24;

/// Strategy identifiers for `sys_guess_strategy` (Fig. 1's `DFS`).
pub mod strategy_id {
    /// Depth-first search.
    pub const DFS: u64 = 0;
    /// Breadth-first search.
    pub const BFS: u64 = 1;
    /// Best-first / A*.
    pub const ASTAR: u64 = 2;
    /// Memory-bounded A*.
    pub const SMA_STAR: u64 = 3;
}

/// What the guest executor should do after a syscall was handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallEffect {
    /// Handled locally; `%rax` holds the result. Keep executing.
    Continue,
    /// The guest must trap back to the engine with this exit.
    Trap(Exit),
}

/// The encapsulation policy (§5): which side-effect classes are supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterposePolicy {
    /// Allow regular-file I/O through the branch's CoW view.
    pub allow_files: bool,
    /// Pass console writes (fd 1/2) through to the engine transcript.
    pub allow_console: bool,
    /// Strict mode: an unsupported syscall is a guest fault instead of a
    /// polite `-ENOSYS`.
    pub strict: bool,
}

impl Default for InterposePolicy {
    fn default() -> Self {
        InterposePolicy {
            allow_files: true,
            allow_console: true,
            strict: false,
        }
    }
}

const ENOSYS: i64 = 38;
const EFAULT: i64 = 14;
const EINVAL: i64 = 22;
const ENOMEM: i64 = 12;

fn fs_errno(e: FsError) -> i64 {
    e.errno()
}

fn mem_errno(e: MemError) -> i64 {
    match e {
        MemError::BadAlign { .. } | MemError::BadRange { .. } | MemError::BadBrk { .. } => EINVAL,
        MemError::Overlap { .. } | MemError::NoSpace { .. } => ENOMEM,
        MemError::NotMapped { .. } => EINVAL,
    }
}

/// Reads a NUL-terminated UTF-8 path from guest memory.
fn read_path(state: &mut GuestState, ptr: u64) -> Result<String, i64> {
    let bytes = state.mem.read_cstr(ptr, 4096).map_err(|_| EFAULT)?;
    String::from_utf8(bytes).map_err(|_| EINVAL)
}

fn decode_prot(bits: u64) -> Prot {
    let mut prot = Prot::NONE;
    if bits & 1 != 0 {
        prot = prot.union(Prot::R);
    }
    if bits & 2 != 0 {
        prot = prot.union(Prot::W);
    }
    if bits & 4 != 0 {
        prot = prot.union(Prot::X);
    }
    prot
}

/// Dispatches one guest syscall.
///
/// The executor must have advanced `rip` past the syscall instruction
/// before calling this, so that snapshots taken at a guess resume *after*
/// the guessing point.
pub fn handle_syscall(state: &mut GuestState, policy: &InterposePolicy) -> SyscallEffect {
    let nr = state.regs.get(Reg::Rax);
    let args = state.regs.syscall_args();
    let Some(sysno) = Sysno::from_u64(nr) else {
        return unsupported(state, policy, nr);
    };
    match sysno {
        Sysno::Read => sys_read(state, policy, args),
        Sysno::Write => sys_write(state, policy, args),
        Sysno::Open => sys_open(state, policy, args),
        Sysno::Close => simple_fs(state, policy, |st| st.fs.close(args[0] as u32).map(|()| 0)),
        Sysno::Fstat => sys_fstat(state, policy, args),
        Sysno::Lseek => simple_fs(state, policy, |st| {
            st.fs
                .lseek(args[0] as u32, args[1] as i64, args[2] as u32)
                .map(|off| off as i64)
        }),
        Sysno::Mmap => sys_mmap(state, args),
        Sysno::Mprotect => sys_mem(state, |st| {
            st.mem
                .protect(args[0], args[1], decode_prot(args[2]))
                .map(|()| 0)
        }),
        Sysno::Munmap => sys_mem(state, |st| st.mem.unmap(args[0], args[1]).map(|()| 0)),
        Sysno::Brk => sys_brk(state, args),
        Sysno::Exit => SyscallEffect::Trap(Exit::Exit {
            code: args[0] as i64,
        }),
        Sysno::Ftruncate => simple_fs(state, policy, |st| {
            st.fs.ftruncate(args[0] as u32, args[1]).map(|()| 0)
        }),
        Sysno::Mkdir => sys_path_op(state, policy, args[0], |st, path| {
            st.fs.volume_mut().mkdir(&path).map(|_| 0)
        }),
        Sysno::Unlink => sys_path_op(state, policy, args[0], |st, path| {
            st.fs.volume_mut().unlink(&path).map(|_| 0)
        }),
        Sysno::Guess => {
            if args[0] == 0 {
                return SyscallEffect::Trap(Exit::Fail);
            }
            SyscallEffect::Trap(Exit::Guess {
                n: args[0],
                hint: None,
            })
        }
        Sysno::GuessFail => SyscallEffect::Trap(Exit::Fail),
        Sysno::GuessStrategy => {
            let known = matches!(
                args[0],
                strategy_id::DFS | strategy_id::BFS | strategy_id::ASTAR | strategy_id::SMA_STAR
            );
            state.regs.set_return(known as u64);
            SyscallEffect::Continue
        }
        Sysno::Emit => SyscallEffect::Trap(Exit::Emit),
        Sysno::GuessHint => sys_guess_hint(state, args),
        Sysno::Putint => {
            let text = format!("{}", args[0] as i64);
            state.regs.set_return(0);
            if policy.allow_console {
                SyscallEffect::Trap(Exit::Output {
                    fd: 1,
                    data: text.into_bytes(),
                })
            } else {
                SyscallEffect::Continue
            }
        }
    }
}

fn unsupported(state: &mut GuestState, policy: &InterposePolicy, nr: u64) -> SyscallEffect {
    if policy.strict {
        SyscallEffect::Trap(Exit::Fault(GuestFault::DeniedSyscall { nr }))
    } else {
        state.regs.set_errno(ENOSYS);
        SyscallEffect::Continue
    }
}

fn denied(state: &mut GuestState, policy: &InterposePolicy, nr: u64) -> SyscallEffect {
    if policy.strict {
        SyscallEffect::Trap(Exit::Fault(GuestFault::DeniedSyscall { nr }))
    } else {
        state.regs.set_errno(FsError::NotSup.errno());
        SyscallEffect::Continue
    }
}

fn simple_fs(
    state: &mut GuestState,
    policy: &InterposePolicy,
    op: impl FnOnce(&mut GuestState) -> Result<i64, FsError>,
) -> SyscallEffect {
    if !policy.allow_files {
        let nr = state.regs.get(Reg::Rax);
        return denied(state, policy, nr);
    }
    match op(state) {
        Ok(v) => state.regs.set_return(v as u64),
        Err(e) => state.regs.set_errno(fs_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_path_op(
    state: &mut GuestState,
    policy: &InterposePolicy,
    path_ptr: u64,
    op: impl FnOnce(&mut GuestState, String) -> Result<i64, FsError>,
) -> SyscallEffect {
    if !policy.allow_files {
        let nr = state.regs.get(Reg::Rax);
        return denied(state, policy, nr);
    }
    let path = match read_path(state, path_ptr) {
        Ok(p) => p,
        Err(errno) => {
            state.regs.set_errno(errno);
            return SyscallEffect::Continue;
        }
    };
    match op(state, path) {
        Ok(v) => state.regs.set_return(v as u64),
        Err(e) => state.regs.set_errno(fs_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_open(state: &mut GuestState, policy: &InterposePolicy, args: [u64; 6]) -> SyscallEffect {
    sys_path_op(state, policy, args[0], |st, path| {
        // Sound-but-incomplete: device-like paths are refused outright.
        if path.starts_with("/dev/") || path.starts_with("/proc/") || path.starts_with("/sys/") {
            return Err(FsError::NotSup);
        }
        st.fs
            .open(&path, OpenFlags::from_bits(args[1] as u32))
            .map(|fd| fd as i64)
    })
}

fn sys_read(state: &mut GuestState, policy: &InterposePolicy, args: [u64; 6]) -> SyscallEffect {
    if !policy.allow_files {
        return denied(state, policy, 0);
    }
    let (fd, buf_ptr, count) = (args[0] as u32, args[1], args[2]);
    // Cap single transfers to keep temporary buffers bounded.
    let count = count.min(1 << 20) as usize;
    let mut tmp = vec![0u8; count];
    match state.fs.read(fd, &mut tmp) {
        Ok(n) => {
            if state.mem.write_bytes(buf_ptr, &tmp[..n]).is_err() {
                state.regs.set_errno(EFAULT);
            } else {
                state.regs.set_return(n as u64);
            }
        }
        Err(e) => state.regs.set_errno(fs_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_write(state: &mut GuestState, policy: &InterposePolicy, args: [u64; 6]) -> SyscallEffect {
    let (fd, buf_ptr, count) = (args[0] as u32, args[1], args[2]);
    let count = count.min(1 << 20) as usize;
    let mut data = vec![0u8; count];
    if state.mem.read_bytes(buf_ptr, &mut data).is_err() {
        state.regs.set_errno(EFAULT);
        return SyscallEffect::Continue;
    }
    if fd == 1 || fd == 2 {
        // Console write-through: the one side-effect class that escapes
        // containment (this is how Fig. 1 prints its answers).
        state.regs.set_return(count as u64);
        return if policy.allow_console {
            SyscallEffect::Trap(Exit::Output { fd, data })
        } else {
            SyscallEffect::Continue
        };
    }
    if !policy.allow_files {
        return denied(state, policy, 1);
    }
    match state.fs.write(fd, &data) {
        Ok(n) => state.regs.set_return(n as u64),
        Err(e) => state.regs.set_errno(fs_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_fstat(state: &mut GuestState, policy: &InterposePolicy, args: [u64; 6]) -> SyscallEffect {
    if !policy.allow_files {
        return denied(state, policy, 5);
    }
    match state.fs.fstat(args[0] as u32) {
        Ok(meta) => {
            let kind = match meta.kind {
                lwsnap_fs::FileKind::File => 0u64,
                lwsnap_fs::FileKind::Dir => 1u64,
            };
            let mut buf = [0u8; STAT_SIZE as usize];
            buf[0..8].copy_from_slice(&(meta.inode as u64).to_le_bytes());
            buf[8..16].copy_from_slice(&kind.to_le_bytes());
            buf[16..24].copy_from_slice(&meta.len.to_le_bytes());
            if state.mem.write_bytes(args[1], &buf).is_err() {
                state.regs.set_errno(EFAULT);
            } else {
                state.regs.set_return(0);
            }
        }
        Err(e) => state.regs.set_errno(fs_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_mmap(state: &mut GuestState, args: [u64; 6]) -> SyscallEffect {
    // Anonymous private mappings only; addr hint and fd are ignored.
    let len = lwsnap_mem::round_up_pages(args[1]);
    if len == 0 {
        state.regs.set_errno(EINVAL);
        return SyscallEffect::Continue;
    }
    match state.mem.map_anon(len, decode_prot(args[2]), "guest-mmap") {
        Ok(addr) => state.regs.set_return(addr),
        Err(e) => state.regs.set_errno(mem_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_mem(
    state: &mut GuestState,
    op: impl FnOnce(&mut GuestState) -> Result<i64, MemError>,
) -> SyscallEffect {
    match op(state) {
        Ok(v) => state.regs.set_return(v as u64),
        Err(e) => state.regs.set_errno(mem_errno(e)),
    }
    SyscallEffect::Continue
}

fn sys_brk(state: &mut GuestState, args: [u64; 6]) -> SyscallEffect {
    // Linux brk returns the (possibly unchanged) break.
    let result = match state.mem.brk(args[0]) {
        Ok(brk) => brk,
        Err(_) => state.mem.current_brk(),
    };
    state.regs.set_return(result);
    SyscallEffect::Continue
}

fn sys_guess_hint(state: &mut GuestState, args: [u64; 6]) -> SyscallEffect {
    let (n, g, h_ptr) = (args[0], args[1], args[2]);
    if n == 0 {
        return SyscallEffect::Trap(Exit::Fail);
    }
    if n > 4096 {
        state.regs.set_errno(EINVAL);
        return SyscallEffect::Continue;
    }
    let mut h = Vec::with_capacity(n as usize);
    for i in 0..n {
        match state.mem.read_u64(h_ptr + i * 8) {
            Ok(v) => h.push(v),
            Err(_) => {
                state.regs.set_errno(EFAULT);
                return SyscallEffect::Continue;
            }
        }
    }
    SyscallEffect::Trap(Exit::Guess {
        n,
        hint: Some(GuessHint { g, h }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwsnap_mem::{Prot as MemProt, RegionKind, PAGE_SIZE};

    fn state_with_ram() -> GuestState {
        let mut st = GuestState::new();
        st.mem
            .map_fixed(
                0x1_0000,
                16 * PAGE_SIZE as u64,
                MemProt::RW,
                RegionKind::Anon,
                "ram",
            )
            .unwrap();
        st
    }

    fn call(st: &mut GuestState, nr: u64, args: [u64; 6]) -> SyscallEffect {
        st.regs.set(Reg::Rax, nr);
        st.regs.set(Reg::Rdi, args[0]);
        st.regs.set(Reg::Rsi, args[1]);
        st.regs.set(Reg::Rdx, args[2]);
        st.regs.set(Reg::R10, args[3]);
        st.regs.set(Reg::R8, args[4]);
        st.regs.set(Reg::R9, args[5]);
        handle_syscall(st, &InterposePolicy::default())
    }

    fn rax(st: &GuestState) -> i64 {
        st.regs.get(Reg::Rax) as i64
    }

    #[test]
    fn guess_traps() {
        let mut st = state_with_ram();
        let eff = call(&mut st, 1000, [8, 0, 0, 0, 0, 0]);
        assert_eq!(eff, SyscallEffect::Trap(Exit::Guess { n: 8, hint: None }));
        // Zero-domain guess is a fail.
        assert_eq!(call(&mut st, 1000, [0; 6]), SyscallEffect::Trap(Exit::Fail));
        assert_eq!(call(&mut st, 1001, [0; 6]), SyscallEffect::Trap(Exit::Fail));
    }

    #[test]
    fn guess_strategy_validates() {
        let mut st = state_with_ram();
        assert_eq!(
            call(&mut st, 1002, [strategy_id::DFS, 0, 0, 0, 0, 0]),
            SyscallEffect::Continue
        );
        assert_eq!(rax(&st), 1);
        call(&mut st, 1002, [77, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st), 0);
    }

    #[test]
    fn guess_hint_reads_distance_vector() {
        let mut st = state_with_ram();
        st.mem.write_u64(0x1_0000, 5).unwrap();
        st.mem.write_u64(0x1_0008, 9).unwrap();
        let eff = call(&mut st, 1004, [2, 100, 0x1_0000, 0, 0, 0]);
        assert_eq!(
            eff,
            SyscallEffect::Trap(Exit::Guess {
                n: 2,
                hint: Some(GuessHint {
                    g: 100,
                    h: vec![5, 9]
                })
            })
        );
        // Bad pointer → EFAULT.
        let eff = call(&mut st, 1004, [2, 100, 0xdead_0000, 0, 0, 0]);
        assert_eq!(eff, SyscallEffect::Continue);
        assert_eq!(rax(&st), -EFAULT);
    }

    #[test]
    fn console_write_passes_through() {
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"hi").unwrap();
        let eff = call(&mut st, 1, [1, 0x1_0000, 2, 0, 0, 0]);
        assert_eq!(
            eff,
            SyscallEffect::Trap(Exit::Output {
                fd: 1,
                data: b"hi".to_vec()
            })
        );
        assert_eq!(rax(&st), 2, "return value set before trapping");
    }

    #[test]
    fn file_roundtrip_via_syscalls() {
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"/out.txt\0").unwrap();
        st.mem.write_bytes(0x1_1000, b"payload!").unwrap();
        // open(path, O_WRONLY|O_CREAT|O_TRUNC)
        call(&mut st, 2, [0x1_0000, 0o1101, 0, 0, 0, 0]);
        let fd = rax(&st);
        assert!(fd >= 3, "fd allocated: {fd}");
        // write(fd, buf, 8)
        call(&mut st, 1, [fd as u64, 0x1_1000, 8, 0, 0, 0]);
        assert_eq!(rax(&st), 8);
        // lseek(fd, 0, SEEK_SET) then read back via a fresh fd.
        call(&mut st, 3, [fd as u64, 0, 0, 0, 0, 0]); // close
        assert_eq!(rax(&st), 0);
        call(&mut st, 2, [0x1_0000, 0, 0, 0, 0, 0]); // open O_RDONLY
        let fd2 = rax(&st) as u64;
        call(&mut st, 0, [fd2, 0x1_2000, 64, 0, 0, 0]); // read
        assert_eq!(rax(&st), 8);
        let mut buf = [0u8; 8];
        st.mem.read_bytes(0x1_2000, &mut buf).unwrap();
        assert_eq!(&buf, b"payload!");
        // fstat reports the size.
        call(&mut st, 5, [fd2, 0x1_3000, 0, 0, 0, 0]);
        assert_eq!(rax(&st), 0);
        assert_eq!(st.mem.read_u64(0x1_3000 + 16).unwrap(), 8);
    }

    #[test]
    fn open_rejects_devices() {
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"/dev/null\0").unwrap();
        call(&mut st, 2, [0x1_0000, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st), -(FsError::NotSup.errno()));
    }

    #[test]
    fn bad_path_pointer_is_efault() {
        let mut st = state_with_ram();
        call(&mut st, 2, [0xdddd_0000, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st), -EFAULT);
    }

    #[test]
    fn mmap_brk_munmap() {
        let mut st = state_with_ram();
        call(&mut st, 9, [0, 8192, 3, 0, 0, 0]); // mmap RW
        let addr = rax(&st) as u64;
        assert!(addr >= 0x2000_0000_0000);
        st.mem.write_u64(addr, 1).unwrap();
        call(&mut st, 10, [addr, 4096, 1, 0, 0, 0]); // mprotect R
        assert_eq!(rax(&st), 0);
        assert!(st.mem.write_u64(addr, 2).is_err());
        call(&mut st, 11, [addr, 8192, 0, 0, 0, 0]); // munmap
        assert_eq!(rax(&st), 0);
        assert!(st.mem.read_u64(addr).is_err());
        // brk query then grow.
        call(&mut st, 12, [0, 0, 0, 0, 0, 0]);
        let cur = rax(&st) as u64;
        call(&mut st, 12, [cur + 4096, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st) as u64, cur + 4096);
        st.mem.write_u64(cur, 3).unwrap();
        // Failed brk returns the current break (Linux behaviour).
        call(&mut st, 12, [1, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st) as u64, cur + 4096);
    }

    #[test]
    fn exit_and_emit_trap() {
        let mut st = state_with_ram();
        assert_eq!(
            call(&mut st, 60, [42, 0, 0, 0, 0, 0]),
            SyscallEffect::Trap(Exit::Exit { code: 42 })
        );
        assert_eq!(call(&mut st, 1003, [0; 6]), SyscallEffect::Trap(Exit::Emit));
    }

    #[test]
    fn putint_formats() {
        let mut st = state_with_ram();
        let eff = call(&mut st, 1005, [(-7i64) as u64, 0, 0, 0, 0, 0]);
        assert_eq!(
            eff,
            SyscallEffect::Trap(Exit::Output {
                fd: 1,
                data: b"-7".to_vec()
            })
        );
    }

    #[test]
    fn unknown_syscall_enosys_or_fault() {
        let mut st = state_with_ram();
        assert_eq!(call(&mut st, 9999, [0; 6]), SyscallEffect::Continue);
        assert_eq!(rax(&st), -ENOSYS);
        // Strict mode faults instead.
        st.regs.set(Reg::Rax, 9999);
        let eff = handle_syscall(
            &mut st,
            &InterposePolicy {
                strict: true,
                ..Default::default()
            },
        );
        assert_eq!(
            eff,
            SyscallEffect::Trap(Exit::Fault(GuestFault::DeniedSyscall { nr: 9999 }))
        );
    }

    #[test]
    fn policy_denies_files() {
        let policy = InterposePolicy {
            allow_files: false,
            ..Default::default()
        };
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"/f\0").unwrap();
        st.regs.set(Reg::Rax, 2);
        st.regs.set(Reg::Rdi, 0x1_0000);
        assert_eq!(handle_syscall(&mut st, &policy), SyscallEffect::Continue);
        assert_eq!(rax(&st), -(FsError::NotSup.errno()));
    }

    #[test]
    fn policy_mutes_console() {
        let policy = InterposePolicy {
            allow_console: false,
            ..Default::default()
        };
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"x").unwrap();
        st.regs.set(Reg::Rax, 1);
        st.regs.set(Reg::Rdi, 1);
        st.regs.set(Reg::Rsi, 0x1_0000);
        st.regs.set(Reg::Rdx, 1);
        assert_eq!(handle_syscall(&mut st, &policy), SyscallEffect::Continue);
        assert_eq!(rax(&st), 1, "write succeeds silently");
    }

    #[test]
    fn mkdir_unlink_via_syscalls() {
        let mut st = state_with_ram();
        st.mem.write_bytes(0x1_0000, b"/d\0").unwrap();
        call(&mut st, 83, [0x1_0000, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st), 0);
        assert!(st.fs.volume().stat("/d").is_ok());
        st.mem.write_bytes(0x1_0100, b"/d\0").unwrap();
        call(&mut st, 87, [0x1_0100, 0, 0, 0, 0, 0]);
        assert_eq!(rax(&st), -(FsError::IsDir.errno()));
    }
}
