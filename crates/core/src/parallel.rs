//! Work-stealing parallel search over shared immutable snapshots.
//!
//! The paper's pitch is that snapshot forks are cheap enough to explore
//! many candidate extensions *at once*. The sequential [`crate::Engine`]
//! evaluates one extension at a time; this module evaluates them on N
//! worker threads. It leans on the property the whole workspace is built
//! around: a [`Snapshot`] is an immutable, structurally shared value, so
//! handing one to another thread is an `Arc` clone — no copying, no
//! locking of guest state.
//!
//! ## Architecture
//!
//! * Each worker owns a **lock-free Chase–Lev deque** ([`crate::deque`])
//!   of [`WorkItem`]s (one unevaluated extension step each:
//!   `Arc<Snapshot>` + extension index + tree path).
//! * A worker pushes the siblings of every guess onto its **own** deque
//!   (bottom) and continues extension 0 inline — the same depth-first
//!   fast path as the sequential engine. An owner push is a plain store
//!   plus a `Release` publish: no lock, no read-modify-write.
//! * An idle worker pops its own deque LIFO (depth-first, cache-warm) and
//!   **steals from the top** of other workers' deques (the shallowest
//!   entry — the largest unexplored subtree, the classic work-stealing
//!   heuristic). A steal is one `compare_exchange`.
//! * Only when a full steal sweep finds nothing does a worker fall back
//!   to the **condvar slow path**: it registers in the idle count and
//!   parks on a timed wait, so an idle fleet sleeps instead of spinning.
//!   Producers skip the wakeup lock entirely while nobody is parked.
//! * Termination: a shared count of unevaluated paths; the run is over
//!   when it reaches zero.
//!
//! ## Determinism
//!
//! Execution order is racy by design, but results are not: every output
//! event is tagged with its **tree path** (the sequence of extension
//! indices from the root). Sorting events by path yields exactly the
//! depth-first discovery order, so an exhaustive parallel run produces a
//! transcript *byte-identical* to `Engine::run` with [`Dfs`] — regardless
//! of worker count or scheduling. Early-stop limits (`max_solutions`,
//! `max_extensions`) necessarily make coverage scheduling-dependent; only
//! exhaustive runs promise transcript equality.
//!
//! ```
//! use lwsnap_core::{Engine, ParallelEngine, strategy::Dfs};
//! # use lwsnap_core::{Exit, GuestState, Reg};
//! # fn guest() -> impl FnMut(&mut GuestState) -> Exit {
//! #     |st: &mut GuestState| match st.regs.get(Reg::Rbx) {
//! #         0 => { st.regs.set(Reg::Rbx, 1); Exit::Guess { n: 3, hint: None } }
//! #         1 => { let g = st.regs.get(Reg::Rax); st.regs.set(Reg::Rbx, 2);
//! #                Exit::Output { fd: 1, data: format!("{g} ").into_bytes() } }
//! #         _ => Exit::Fail,
//! #     }
//! # }
//! # fn root() -> GuestState { GuestState::new() }
//! let sequential = Engine::new(Dfs::new()).run(&mut guest(), root());
//! let parallel = ParallelEngine::new(4).run(guest, root());
//! assert_eq!(parallel.transcript, sequential.transcript);
//! ```
//!
//! [`Dfs`]: crate::strategy::Dfs

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::deque::{Deque, Steal, Stealer};
use crate::engine::{EngineStats, FaultPolicy, RunResult, Solution, StopReason, MAX_FANOUT};
use crate::guest::{Exit, Guest, GuestFault, GuestState};
use crate::registers::Reg;
use crate::snapshot::Snapshot;

// ---------------------------------------------------------------------
// Send/Sync audit.
// ---------------------------------------------------------------------
//
// The whole module rests on snapshots being shareable across threads.
// These compile-time assertions are the audit: they fail to compile if
// any constituent (persistent radix page tables in `lwsnap-mem`, CoW
// volumes in `lwsnap-fs`, register files, `ExtData`) regresses to a
// thread-unsafe representation (`Rc`, `Cell`, raw pointers, ...).
const _SEND_SYNC_AUDIT: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<GuestState>();
    assert_send_sync::<lwsnap_mem::AddressSpace>();
    assert_send_sync::<lwsnap_fs::FsView>();
    assert_send_sync::<lwsnap_fs::Volume>();
    assert_send_sync::<crate::registers::RegisterFile>();
};

/// Tuning knobs for a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Best-effort stop after this many solutions. Which solutions are
    /// found first is scheduling-dependent; see module docs.
    pub max_solutions: Option<u64>,
    /// Best-effort global budget of extension steps.
    pub max_extensions: Option<u64>,
    /// Fault handling policy (shared semantics with the sequential
    /// engine: `FailPath` discards the path, `Abort` stops the run).
    pub fault_policy: FaultPolicy,
}

impl ParallelConfig {
    /// A config with `workers` threads and no limits.
    pub fn new(workers: usize) -> Self {
        ParallelConfig {
            workers: workers.max(1),
            max_solutions: None,
            max_extensions: None,
            fault_policy: FaultPolicy::FailPath,
        }
    }
}

/// The result of a parallel run: a merged, deterministically ordered
/// [`RunResult`] plus per-worker statistics.
#[derive(Debug)]
pub struct ParallelRunResult {
    /// Why the run stopped.
    pub stop: StopReason,
    /// Aggregated counters (sum over workers; peaks are global peaks).
    pub stats: EngineStats,
    /// Per-worker counters, indexed by worker id. The peak fields
    /// (`snapshots_peak`, `frontier_peak`) are run-global and reported
    /// only in [`ParallelRunResult::stats`]; here they stay zero.
    pub worker_stats: Vec<EngineStats>,
    /// Guest console output in depth-first discovery order.
    pub transcript: Vec<u8>,
    /// Solutions in depth-first discovery order.
    pub solutions: Vec<Solution>,
    /// Exit codes in depth-first discovery order.
    pub exit_codes: Vec<i64>,
}

impl ParallelRunResult {
    /// The transcript as lossy UTF-8.
    pub fn transcript_str(&self) -> String {
        String::from_utf8_lossy(&self.transcript).into_owned()
    }

    /// Collapses into the sequential engine's result type (dropping the
    /// per-worker breakdown).
    pub fn into_run_result(self) -> RunResult {
        RunResult {
            stop: self.stop,
            stats: self.stats,
            transcript: self.transcript,
            solutions: self.solutions,
            exit_codes: self.exit_codes,
        }
    }
}

/// One unevaluated extension step, shareable across workers.
struct WorkItem {
    /// `None` for the root item (a materialised state, no parent
    /// snapshot); `Some` for a queued extension of a snapshot.
    kind: ItemKind,
    /// Extension indices from the root to this path.
    path: Vec<u64>,
}

enum ItemKind {
    Root(Box<GuestState>),
    Ext {
        snap: Arc<TrackedSnapshot>,
        index: u64,
    },
}

/// A snapshot plus live-count bookkeeping so the run can report the
/// high-water mark of simultaneously live snapshots.
struct TrackedSnapshot {
    snap: Snapshot,
    live: Arc<AtomicUsize>,
}

impl Drop for TrackedSnapshot {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A path-tagged output event, merged and sorted after the run.
enum EventKind {
    Output(Vec<u8>),
    Solution { depth: u64 },
    Exit(i64),
}

struct PathEvent {
    path: Arc<[u64]>,
    seq: u32,
    kind: EventKind,
}

/// State shared by all workers.
struct SharedState {
    /// Thief handles onto every worker's lock-free deque, indexed by
    /// worker id. The owning [`Deque`] handles live on the worker
    /// threads themselves.
    stealers: Vec<Stealer<WorkItem>>,
    /// Paths queued or executing. The run is over when this hits zero.
    pending: AtomicUsize,
    /// Sleep/wake coordination for idle workers.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    /// Workers currently parked on `idle_cv`. Producers skip the wakeup
    /// lock entirely while this is zero, so wide fan-outs in a saturated
    /// run pay one deque lock per sibling batch and nothing else. A
    /// stale-zero read can miss a wakeup; the parked worker's timed wait
    /// bounds that miss at one tick.
    idle: AtomicUsize,
    /// Cooperative early-stop flag.
    stop: AtomicBool,
    /// First non-exhaustion stop reason, if any.
    stop_reason: Mutex<Option<StopReason>>,
    /// Global counters for limit enforcement.
    solutions: AtomicU64,
    extensions: AtomicU64,
    /// Live snapshots and peaks.
    live_snapshots: Arc<AtomicUsize>,
    peak_snapshots: AtomicUsize,
    frontier: AtomicUsize,
    peak_frontier: AtomicUsize,
    config: ParallelConfig,
}

impl SharedState {
    fn record_stop(&self, reason: StopReason) {
        let mut slot = self.stop_reason.lock().unwrap();
        if slot.is_none() {
            *slot = Some(reason);
        }
        self.stop.store(true, Ordering::Release);
        let _guard = self.idle_lock.lock().unwrap();
        self.idle_cv.notify_all();
    }

    fn bump_peak(counter: &AtomicUsize, peak: &AtomicUsize, added: usize) {
        let now = counter.fetch_add(added, Ordering::Relaxed) + added;
        peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Pops local work (LIFO) or steals from a victim (FIFO).
    ///
    /// Lock-free fast path: the local pop is the owner side of a
    /// Chase–Lev deque, a steal is one CAS. `Steal::Retry` (a lost race)
    /// triggers a bounded number of re-sweeps; if work keeps slipping
    /// away the caller falls back to the condvar slow path, whose timed
    /// wait guarantees liveness.
    fn find_work(&self, me: usize, own: &mut Deque<WorkItem>) -> Option<WorkItem> {
        if let Some(item) = own.pop() {
            self.frontier.fetch_sub(1, Ordering::Relaxed);
            return Some(item);
        }
        let n = self.stealers.len();
        for _sweep in 0..4 {
            let mut contended = false;
            for offset in 1..n {
                let victim = (me + offset) % n;
                // Retry the same victim a few times: a Retry means work
                // is moving right here, the best place to look.
                for _attempt in 0..4 {
                    match self.stealers[victim].steal() {
                        Steal::Success(item) => {
                            self.frontier.fetch_sub(1, Ordering::Relaxed);
                            return Some(item);
                        }
                        Steal::Empty => break,
                        Steal::Retry => {
                            contended = true;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
            if !contended {
                return None;
            }
        }
        None
    }

    /// Publishes a sibling batch onto the worker's own deque (wait-free
    /// owner pushes), then wakes sleepers only if any exist.
    fn push_work(&self, own: &mut Deque<WorkItem>, items: Vec<WorkItem>) {
        let added = items.len();
        if added == 0 {
            return;
        }
        // Count BEFORE publishing: a thief may pop (and decrement) the
        // moment an item is visible, so incrementing afterwards would
        // let the counter underflow.
        Self::bump_peak(&self.frontier, &self.peak_frontier, added);
        for item in items {
            own.push(item);
        }
        if self.idle.load(Ordering::Acquire) > 0 {
            let _guard = self.idle_lock.lock().unwrap();
            self.idle_cv.notify_all();
        }
    }

    /// Marks `n` new pending paths.
    fn add_pending(&self, n: usize) {
        self.pending.fetch_add(n, Ordering::AcqRel);
    }

    /// Retires one pending path; wakes everyone when the run is over.
    fn retire_pending(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.idle_lock.lock().unwrap();
            self.idle_cv.notify_all();
        }
    }

    fn done(&self) -> bool {
        self.stop.load(Ordering::Acquire) || self.pending.load(Ordering::Acquire) == 0
    }
}

/// The work-stealing parallel search engine.
///
/// Exploration order is depth-first per worker; results are reported in
/// deterministic depth-first order (see module docs). Construct with
/// [`ParallelEngine::new`] and run with a *guest factory* — each worker
/// builds its own guest, so the guest type needs no thread-safety of its
/// own (the SVM-64 interpreter's decode cache, for example, stays
/// thread-local).
pub struct ParallelEngine {
    config: ParallelConfig,
}

impl ParallelEngine {
    /// An engine with `workers` threads and default limits.
    pub fn new(workers: usize) -> Self {
        ParallelEngine {
            config: ParallelConfig::new(workers),
        }
    }

    /// An engine with an explicit configuration.
    pub fn with_config(config: ParallelConfig) -> Self {
        ParallelEngine {
            config: ParallelConfig {
                workers: config.workers.max(1),
                ..config
            },
        }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Runs the search space of `root` to exhaustion (or a configured
    /// limit) on `self.config.workers` threads.
    ///
    /// `factory` is invoked once per worker, on that worker's thread.
    pub fn run<G, F>(&self, factory: F, root: GuestState) -> ParallelRunResult
    where
        G: Guest,
        F: Fn() -> G + Sync,
    {
        let workers = self.config.workers;
        let mut deques: Vec<Deque<WorkItem>> = (0..workers).map(|_| Deque::new()).collect();
        let shared = SharedState {
            stealers: deques.iter().map(Deque::stealer).collect(),
            pending: AtomicUsize::new(1),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            idle: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            stop_reason: Mutex::new(None),
            solutions: AtomicU64::new(0),
            extensions: AtomicU64::new(0),
            live_snapshots: Arc::new(AtomicUsize::new(0)),
            peak_snapshots: AtomicUsize::new(0),
            frontier: AtomicUsize::new(0),
            peak_frontier: AtomicUsize::new(0),
            config: self.config.clone(),
        };
        SharedState::bump_peak(&shared.frontier, &shared.peak_frontier, 1);
        deques[0].push(WorkItem {
            kind: ItemKind::Root(Box::new(root)),
            path: Vec::new(),
        });

        let mut worker_outputs: Vec<(EngineStats, Vec<PathEvent>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = deques
                .into_iter()
                .enumerate()
                .map(|(id, mut own)| {
                    let shared = &shared;
                    let factory = &factory;
                    scope.spawn(move || {
                        let mut guest = factory();
                        worker_loop(id, shared, &mut own, &mut guest)
                    })
                })
                .collect();
            for handle in handles {
                worker_outputs.push(handle.join().expect("worker panicked"));
            }
        });

        finalize(shared, worker_outputs)
    }
}

impl<S: crate::strategy::Strategy> crate::Engine<S> {
    /// Parallel counterpart of [`crate::Engine::run`]: explores the same
    /// search space on `workers` threads and reports results in
    /// deterministic depth-first order.
    ///
    /// The configured strategy is *not* consulted — parallel exploration
    /// is depth-first per worker by construction (see the module docs of
    /// [`crate::parallel`]). Limits and the fault policy carry over from
    /// the engine's [`crate::EngineConfig`]; `echo_output` and
    /// `keep_all_snapshots` are not supported in parallel runs (output
    /// arrives out of order until the final merge, and there is no
    /// shared snapshot tree to pin) and are ignored.
    pub fn run_parallel<G, F>(&mut self, workers: usize, factory: F, root: GuestState) -> RunResult
    where
        G: Guest,
        F: Fn() -> G + Sync,
    {
        let config = ParallelConfig {
            workers: workers.max(1),
            max_solutions: self.config().max_solutions,
            max_extensions: self.config().max_extensions,
            fault_policy: self.config().fault_policy,
        };
        ParallelEngine::with_config(config)
            .run(factory, root)
            .into_run_result()
    }
}

/// One worker: find work, evaluate paths depth-first, park when idle.
fn worker_loop(
    id: usize,
    shared: &SharedState,
    own: &mut Deque<WorkItem>,
    guest: &mut dyn Guest,
) -> (EngineStats, Vec<PathEvent>) {
    let mut stats = EngineStats::default();
    let mut events: Vec<PathEvent> = Vec::new();
    loop {
        if shared.done() {
            break;
        }
        match shared.find_work(id, own) {
            Some(item) => evaluate_path(shared, own, guest, item, &mut stats, &mut events),
            None => {
                let guard = shared.idle_lock.lock().unwrap();
                if shared.done() {
                    break;
                }
                // Timed wait guards against the (benign) races between
                // the emptiness check and a concurrent push, and between
                // a producer's idle-count read and this increment.
                shared.idle.fetch_add(1, Ordering::AcqRel);
                let _ = shared
                    .idle_cv
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .unwrap();
                shared.idle.fetch_sub(1, Ordering::AcqRel);
            }
        }
    }
    (stats, events)
}

/// Evaluates one path to completion: materialise, resume, fork siblings
/// at guesses, continue extension 0 inline until the path dies.
fn evaluate_path(
    shared: &SharedState,
    own: &mut Deque<WorkItem>,
    guest: &mut dyn Guest,
    item: WorkItem,
    stats: &mut EngineStats,
    events: &mut Vec<PathEvent>,
) {
    // Retire the path on every exit from this function — including an
    // unwind out of the guest or the engine itself. Without this, a
    // panicking worker would leave `pending` above zero and the
    // surviving workers polling forever; with it, the run drains and
    // the panic propagates through the scope join.
    struct RetireOnDrop<'a>(&'a SharedState);
    impl Drop for RetireOnDrop<'_> {
        fn drop(&mut self) {
            self.0.retire_pending();
        }
    }
    let _retire = RetireOnDrop(shared);

    let mut path = item.path;
    let mut state = match item.kind {
        ItemKind::Root(state) => *state,
        ItemKind::Ext { snap, index } => {
            let mut st = snap.snap.materialize();
            st.regs.set(Reg::Rax, index);
            stats.restores += 1;
            st
        }
    };
    let mut seq: u32 = 0;
    // Events of one segment share one Arc'd copy of the path (built
    // lazily — failed paths, the overwhelming majority, never pay it).
    let mut path_tag: Option<Arc<[u64]>> = None;
    let mut push_event =
        |path: &[u64], tag: &mut Option<Arc<[u64]>>, seq: &mut u32, kind: EventKind| {
            let tag = tag.get_or_insert_with(|| Arc::from(path)).clone();
            events.push(PathEvent {
                path: tag,
                seq: *seq,
                kind,
            });
            *seq += 1;
        };

    'segment: loop {
        // The shared counter exists only to enforce a configured budget;
        // totals come from the per-worker stats, so an unbounded run
        // never touches this contended cache line.
        if let Some(max) = shared.config.max_extensions {
            if shared.extensions.fetch_add(1, Ordering::AcqRel) >= max {
                shared.record_stop(StopReason::ExtensionBudget);
                break 'segment;
            }
        }
        stats.extensions_evaluated += 1;

        loop {
            if shared.stop.load(Ordering::Acquire) {
                break 'segment;
            }
            match guest.resume(&mut state) {
                Exit::Output { fd: _, data } => {
                    push_event(&path, &mut path_tag, &mut seq, EventKind::Output(data));
                }
                Exit::Emit => {
                    push_event(
                        &path,
                        &mut path_tag,
                        &mut seq,
                        EventKind::Solution { depth: state.depth },
                    );
                    stats.solutions += 1;
                    if let Some(max) = shared.config.max_solutions {
                        let total = shared.solutions.fetch_add(1, Ordering::AcqRel) + 1;
                        if total >= max {
                            shared.record_stop(StopReason::SolutionLimit);
                            break 'segment;
                        }
                    }
                }
                Exit::Guess { n, hint } => {
                    if n == 0 {
                        stats.failures += 1;
                        break 'segment;
                    }
                    if n > MAX_FANOUT {
                        stats.faults += 1;
                        match shared.config.fault_policy {
                            FaultPolicy::FailPath => break 'segment,
                            FaultPolicy::Abort => {
                                shared.record_stop(StopReason::Aborted(GuestFault::Other(
                                    format!("guess fan-out {n} exceeds MAX_FANOUT"),
                                )));
                                break 'segment;
                            }
                        }
                    }
                    state.depth += 1;
                    if let Some(h) = &hint {
                        state.gcost = h.g;
                    }
                    if n > 1 {
                        // Capture once; all siblings share the snapshot.
                        SharedState::bump_peak(
                            shared.live_snapshots.as_ref(),
                            &shared.peak_snapshots,
                            1,
                        );
                        let snap = Arc::new(TrackedSnapshot {
                            snap: Snapshot::capture(&state, None),
                            live: shared.live_snapshots.clone(),
                        });
                        stats.snapshots_created += 1;
                        let siblings: Vec<WorkItem> = (1..n)
                            .map(|i| {
                                let mut sibling_path = path.clone();
                                sibling_path.push(i);
                                WorkItem {
                                    kind: ItemKind::Ext {
                                        snap: snap.clone(),
                                        index: i,
                                    },
                                    path: sibling_path,
                                }
                            })
                            .collect();
                        shared.add_pending(siblings.len());
                        shared.push_work(own, siblings);
                    }
                    // Depth-first fast path: continue extension 0 here.
                    state.regs.set(Reg::Rax, 0);
                    path.push(0);
                    path_tag = None;
                    seq = 0;
                    stats.inline_continues += 1;
                    continue 'segment;
                }
                Exit::Fail => {
                    stats.failures += 1;
                    break 'segment;
                }
                Exit::Exit { code } => {
                    stats.exits += 1;
                    push_event(&path, &mut path_tag, &mut seq, EventKind::Exit(code));
                    break 'segment;
                }
                Exit::Fault(fault) => {
                    stats.faults += 1;
                    match shared.config.fault_policy {
                        FaultPolicy::FailPath => break 'segment,
                        FaultPolicy::Abort => {
                            shared.record_stop(StopReason::Aborted(fault));
                            break 'segment;
                        }
                    }
                }
            }
        }
    }
}

/// Merges per-worker event logs into a deterministic result.
fn finalize(
    shared: SharedState,
    worker_outputs: Vec<(EngineStats, Vec<PathEvent>)>,
) -> ParallelRunResult {
    let mut worker_stats = Vec::with_capacity(worker_outputs.len());
    let mut all_events: Vec<PathEvent> = Vec::new();
    let mut total = EngineStats::default();
    for (stats, events) in worker_outputs {
        total.extensions_evaluated += stats.extensions_evaluated;
        total.snapshots_created += stats.snapshots_created;
        total.restores += stats.restores;
        total.inline_continues += stats.inline_continues;
        total.failures += stats.failures;
        total.exits += stats.exits;
        total.faults += stats.faults;
        total.solutions += stats.solutions;
        worker_stats.push(stats);
        all_events.extend(events);
    }
    total.snapshots_peak = shared.peak_snapshots.load(Ordering::Relaxed);
    total.frontier_peak = shared.peak_frontier.load(Ordering::Relaxed);

    // Depth-first discovery order == lexicographic path order (a prefix
    // sorts before its extensions; sibling indices sort numerically).
    all_events.sort_by(|a, b| a.path.cmp(&b.path).then(a.seq.cmp(&b.seq)));

    let mut transcript = Vec::new();
    let mut solutions = Vec::new();
    let mut exit_codes = Vec::new();
    for event in all_events {
        match event.kind {
            EventKind::Output(data) => transcript.extend_from_slice(&data),
            EventKind::Solution { depth } => {
                solutions.push(Solution {
                    index: solutions.len() as u64,
                    depth,
                    transcript_mark: transcript.len(),
                });
            }
            EventKind::Exit(code) => exit_codes.push(code),
        }
    }

    let stop = shared
        .stop_reason
        .lock()
        .unwrap()
        .take()
        .unwrap_or(StopReason::Exhausted);

    ParallelRunResult {
        stop,
        stats: total,
        worker_stats,
        transcript,
        solutions,
        exit_codes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Dfs;
    use crate::Engine;
    use lwsnap_mem::{Prot, RegionKind, PAGE_SIZE};

    /// The bitstring-enumeration guest from the engine tests, as a
    /// factory so each worker gets its own copy.
    fn bit_guest(depth: u64) -> impl FnMut(&mut GuestState) -> Exit {
        move |st: &mut GuestState| loop {
            let phase = st.regs.get(Reg::Rbx);
            let count = st.regs.get(Reg::Rcx);
            match phase {
                0 => {
                    if count == depth {
                        let mut value = 0u64;
                        for i in 0..depth {
                            value = value << 1 | st.mem.read_u8(0x1000 + i).unwrap() as u64;
                        }
                        if value % 2 == 1 {
                            st.regs.set(Reg::Rbx, 2);
                            return Exit::Output {
                                fd: 1,
                                data: format!("{value} ").into_bytes(),
                            };
                        }
                        return Exit::Fail;
                    }
                    st.regs.set(Reg::Rbx, 1);
                    return Exit::Guess { n: 2, hint: None };
                }
                1 => {
                    let bit = st.regs.get(Reg::Rax) as u8;
                    st.mem.write_u8(0x1000 + count, bit).unwrap();
                    st.regs.set(Reg::Rcx, count + 1);
                    st.regs.set(Reg::Rbx, 0);
                }
                2 => {
                    st.regs.set(Reg::Rbx, 3);
                    return Exit::Emit;
                }
                _ => return Exit::Fail,
            }
        }
    }

    fn bit_root() -> GuestState {
        let mut st = GuestState::new();
        st.mem
            .map_fixed(0x1000, PAGE_SIZE as u64, Prot::RW, RegionKind::Anon, "bits")
            .unwrap();
        st
    }

    #[test]
    fn matches_sequential_dfs_transcript_exactly() {
        let sequential = Engine::new(Dfs::new()).run(&mut bit_guest(5), bit_root());
        for workers in [1, 2, 4, 7] {
            let parallel = ParallelEngine::new(workers).run(|| bit_guest(5), bit_root());
            assert_eq!(parallel.stop, StopReason::Exhausted);
            assert_eq!(
                parallel.transcript, sequential.transcript,
                "transcript differs at {workers} workers"
            );
            assert_eq!(parallel.solutions.len(), sequential.solutions.len());
            for (p, s) in parallel.solutions.iter().zip(&sequential.solutions) {
                assert_eq!(p, s, "solution records must match");
            }
        }
    }

    #[test]
    fn aggregate_stats_match_sequential_totals() {
        let sequential = Engine::new(Dfs::new()).run(&mut bit_guest(6), bit_root());
        let parallel = ParallelEngine::new(3).run(|| bit_guest(6), bit_root());
        let (p, s) = (parallel.stats, sequential.stats);
        assert_eq!(p.extensions_evaluated, s.extensions_evaluated);
        assert_eq!(p.snapshots_created, s.snapshots_created);
        assert_eq!(p.inline_continues, s.inline_continues);
        assert_eq!(p.restores, s.restores);
        assert_eq!(p.failures, s.failures);
        assert_eq!(p.solutions, s.solutions);
        // Per-worker stats decompose the totals.
        let sum: u64 = parallel
            .worker_stats
            .iter()
            .map(|w| w.extensions_evaluated)
            .sum();
        assert_eq!(sum, p.extensions_evaluated);
    }

    #[test]
    fn run_parallel_on_engine_is_equivalent() {
        let sequential = Engine::new(Dfs::new()).run(&mut bit_guest(4), bit_root());
        let parallel = Engine::new(Dfs::new()).run_parallel(2, || bit_guest(4), bit_root());
        assert_eq!(parallel.transcript, sequential.transcript);
        assert_eq!(parallel.stop, StopReason::Exhausted);
    }

    #[test]
    fn solution_limit_stops_early_with_partial_results() {
        let config = ParallelConfig {
            max_solutions: Some(2),
            ..ParallelConfig::new(4)
        };
        let result = ParallelEngine::with_config(config).run(|| bit_guest(6), bit_root());
        assert_eq!(result.stop, StopReason::SolutionLimit);
        assert!(result.solutions.len() >= 2, "at least the limit is found");
        assert!(
            result.solutions.len() < 32,
            "far fewer than the 32 exhaustive solutions"
        );
    }

    #[test]
    fn extension_budget_stops_early() {
        let config = ParallelConfig {
            max_extensions: Some(5),
            ..ParallelConfig::new(2)
        };
        let result = ParallelEngine::with_config(config).run(|| bit_guest(10), bit_root());
        assert_eq!(result.stop, StopReason::ExtensionBudget);
    }

    #[test]
    fn abort_policy_propagates_fault() {
        struct FaultingGuest;
        impl Guest for FaultingGuest {
            fn resume(&mut self, st: &mut GuestState) -> Exit {
                if st.depth == 0 && st.regs.get(Reg::Rbx) == 0 {
                    st.regs.set(Reg::Rbx, 1);
                    return Exit::Guess { n: 2, hint: None };
                }
                Exit::Fault(GuestFault::IllegalInstruction { rip: 0xbad })
            }
        }
        let config = ParallelConfig {
            fault_policy: FaultPolicy::Abort,
            ..ParallelConfig::new(2)
        };
        let result = ParallelEngine::with_config(config).run(|| FaultingGuest, GuestState::new());
        assert!(matches!(result.stop, StopReason::Aborted(_)));
    }

    #[test]
    fn single_worker_degenerates_to_sequential_order_live() {
        // With one worker and LIFO popping, even the *live* execution
        // order is depth-first; the sort is then a no-op.
        let sequential = Engine::new(Dfs::new()).run(&mut bit_guest(4), bit_root());
        let parallel = ParallelEngine::new(1).run(|| bit_guest(4), bit_root());
        assert_eq!(parallel.transcript, sequential.transcript);
        assert_eq!(parallel.stats.restores, sequential.stats.restores);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let result = ParallelEngine::new(0).run(|| bit_guest(3), bit_root());
        assert_eq!(result.worker_stats.len(), 1);
        assert_eq!(result.solutions.len(), 4);
    }
}
