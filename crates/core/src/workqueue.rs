//! A batch-push MPMC injector queue.
//!
//! The work-distribution primitive shared between the snapshot search
//! engine and the sharded solver service: producers inject work (a whole
//! batch under **one** lock acquisition — the cure for contention on wide
//! fan-outs), consumers block until work arrives or the queue is closed.
//!
//! This is deliberately the simple, correct shape — a mutex-protected
//! deque with a condvar — not a lock-free deque. Its throughput ceiling
//! is far above what solve-shaped work items need (each item costs
//! milliseconds of solving against nanoseconds of queueing); the
//! lock-free upgrade stays on the roadmap for finer-grained items.
//!
//! ```
//! use lwsnap_core::workqueue::Injector;
//! use std::sync::Arc;
//!
//! let queue = Arc::new(Injector::new());
//! queue.push_batch(0..4);
//! let consumer = {
//!     let queue = Arc::clone(&queue);
//!     std::thread::spawn(move || {
//!         let mut got = Vec::new();
//!         while let Some(item) = queue.pop() {
//!             got.push(item);
//!         }
//!         got
//!     })
//! };
//! queue.close();
//! assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3]);
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A closable FIFO work queue for many producers and many consumers.
pub struct Injector<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Injects one item. No-op (item dropped) after [`Injector::close`].
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return;
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
    }

    /// Injects a whole batch under a single lock acquisition, then wakes
    /// as many consumers as there are new items. Returns how many items
    /// were accepted (0 if the queue is closed).
    pub fn push_batch(&self, items: impl IntoIterator<Item = T>) -> usize {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return 0;
        }
        let before = inner.items.len();
        inner.items.extend(items);
        let added = inner.items.len() - before;
        drop(inner);
        match added {
            0 => {}
            1 => self.ready.notify_one(),
            _ => self.ready.notify_all(),
        }
        added
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// *and drained* (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.lock().unwrap().items.pop_front()
    }

    /// Closes the queue: future pushes are rejected and consumers drain
    /// the remaining items, then observe `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// `true` once [`Injector::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = Injector::new();
        q.push(1);
        q.push_batch([2, 3, 4]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.try_pop(), Some(4));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_none() {
        let q = Injector::new();
        assert_eq!(q.push_batch([1, 2]), 2);
        q.close();
        assert_eq!(q.push_batch([3]), 0, "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(Injector::new());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    q.push_batch((0..100).map(|i| p * 1000 + i));
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
