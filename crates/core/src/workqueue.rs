//! A lock-free batch-push MPMC injector queue.
//!
//! The work-distribution primitive shared between the snapshot search
//! engine and the sharded solver service: producers inject work,
//! consumers block until work arrives or the queue is closed.
//!
//! PR 2 shipped this as a mutex-protected deque; that version's
//! doc-comment promised "the lock-free upgrade … for finer-grained
//! items", and this is it. The structure is a **segment list**:
//!
//! * `push_batch` allocates one segment holding the whole batch and
//!   appends it with a single unconditional `swap` on the tail pointer —
//!   one CAS-bounded (in fact wait-free) atomic operation per batch, no
//!   matter how many producers collide;
//! * `pop`'s fast path claims the next item of the head segment with one
//!   `fetch_add` on the segment's claim cursor — consumers never take a
//!   lock while work is available;
//! * a drained segment is unlinked by CAS and reclaimed with an
//!   epoch-lite scheme: the popper whose exit drops the active-consumer
//!   count to zero attempts a flush, and the flush frees the retired
//!   list only after **re-verifying the count is still zero under the
//!   retirement lock** — a verified-quiet moment is a full grace
//!   period: every consumer that could hold a retired pointer (even via
//!   a stale `head` read) has exited, and later entrants are fenced off
//!   by the counter's RMW chain (see `flush_retired` for the full
//!   argument). The grace period also proves a retired segment fully
//!   *read*: every claimed-but-unread slot belongs to a counted popper;
//! * the **condvar is retained only for blocking `pop`**: a consumer
//!   that finds the queue empty registers as a sleeper and parks. The
//!   producer side stays lock-free — it takes the wakeup lock only when
//!   the sleeper count says somebody is actually parked, behind a
//!   Dekker-style `SeqCst`-fence handshake (see `push_batch` / `pop`).
//!
//! ## Close semantics
//!
//! `close` is advisory with respect to *concurrent* pushes: a push that
//! has already passed the closed check may still be linked (it counts as
//! linearised before the close). Quiesce producers before closing for
//! exact drain semantics — the shipped users (worker pools, load
//! generators) all join producers first, and the stress tests pin this
//! contract down.
//!
//! ```
//! use lwsnap_core::workqueue::Injector;
//! use std::sync::Arc;
//!
//! let queue = Arc::new(Injector::new());
//! queue.push_batch(0..4);
//! let consumer = {
//!     let queue = Arc::clone(&queue);
//!     std::thread::spawn(move || {
//!         let mut got = Vec::new();
//!         while let Some(item) = queue.pop() {
//!             got.push(item);
//!         }
//!         got
//!     })
//! };
//! queue.close();
//! assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3]);
//! ```
#![allow(unsafe_code)] // lock-free segment list; see SAFETY comments

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// One batch of items, published atomically. Slots are written by the
/// producer **before** the segment becomes reachable and are immutable
/// afterwards; consumers claim exclusive slot indices via `claim`.
struct Segment<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    len: usize,
    /// Next slot index to hand out. May overshoot `len` (empty polls).
    claim: AtomicUsize,
    next: AtomicPtr<Segment<T>>,
}

impl<T> Segment<T> {
    /// Allocates a segment owning `items` (already written, claim 0).
    fn alloc(items: Vec<T>) -> *mut Segment<T> {
        let len = items.len();
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = items
            .into_iter()
            .map(|v| UnsafeCell::new(MaybeUninit::new(v)))
            .collect();
        Box::into_raw(Box::new(Segment {
            slots,
            len,
            claim: AtomicUsize::new(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }

    /// The empty sentinel segment head/tail start at.
    fn sentinel() -> *mut Segment<T> {
        Segment::alloc(Vec::new())
    }

    /// Moves the value out of slot `i`.
    ///
    /// SAFETY: `i < len` and the caller won index `i` from the `claim`
    /// cursor — each index is handed to exactly one consumer, and slots
    /// were initialised before the segment was published.
    unsafe fn read(&self, i: usize) -> T {
        (*self.slots[i].get()).assume_init_read()
    }
}

/// An RAII guard over the popper count: entering blocks reclamation of
/// anything reachable from `head`; the last one out flushes the retired
/// list.
struct PopperGuard<'q, T> {
    queue: &'q Injector<T>,
}

impl<'q, T> PopperGuard<'q, T> {
    fn enter(queue: &'q Injector<T>) -> Self {
        // AcqRel: the increment must be globally visible before any
        // `head` dereference (a reclaimer observing zero must know no
        // dereference is in flight after it).
        queue.poppers.fetch_add(1, Ordering::AcqRel);
        PopperGuard { queue }
    }
}

impl<T> Drop for PopperGuard<'_, T> {
    fn drop(&mut self) {
        // AcqRel: orders our segment reads before the decrement; the
        // flusher that observes the 1 → 0 transition (its own decrement)
        // sees every read complete.
        if self.queue.poppers.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.queue.flush_retired();
        }
    }
}

/// A closable FIFO work queue for many producers and many consumers.
///
/// FIFO holds per producer: one producer's batches are consumed in push
/// order, and items within a batch in batch order. Batches from
/// different producers interleave in tail-swap order.
pub struct Injector<T> {
    /// Oldest segment with unclaimed items (consumers' entry point).
    head: AtomicPtr<Segment<T>>,
    /// Newest segment (producers' swap target).
    tail: AtomicPtr<Segment<T>>,
    closed: AtomicBool,
    /// Producers currently inside `push_batch`. Only read by
    /// [`Injector::quiesce`], which shutdown paths use to turn the
    /// advisory close into an exact one: after `close` + `quiesce`,
    /// every push that will ever be accepted is fully linked.
    pushers: AtomicUsize,
    /// Consumers currently inside the lock-free fast path. The 1 → 0
    /// transition is the reclamation grace period.
    poppers: AtomicUsize,
    /// Unlinked segments awaiting a verified-quiet flush. Locked only
    /// when a segment drains (amortised once per batch) and at flush.
    retired: Mutex<Vec<*mut Segment<T>>>,
    /// Sleep/wake coordination; never touched while work is available.
    sleep_lock: Mutex<()>,
    ready: Condvar,
    /// Consumers parked (or about to park) on `ready`; one side of the
    /// Dekker handshake with `push_batch`.
    sleepers: AtomicUsize,
}

// SAFETY: raw segment pointers are reachable from exactly one queue and
// freed exactly once (grace-period flush or drop). Values of `T` move
// across threads but each is read by exactly one claim winner, so
// `T: Send` suffices.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        let sentinel = Segment::sentinel();
        Injector {
            head: AtomicPtr::new(sentinel),
            tail: AtomicPtr::new(sentinel),
            closed: AtomicBool::new(false),
            pushers: AtomicUsize::new(0),
            poppers: AtomicUsize::new(0),
            retired: Mutex::new(Vec::new()),
            sleep_lock: Mutex::new(()),
            ready: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Injects one item. No-op (item dropped) after [`Injector::close`].
    pub fn push(&self, item: T) {
        self.push_batch(std::iter::once(item));
    }

    /// Injects a whole batch with **one** atomic `swap` on the tail
    /// pointer — regardless of batch size or producer contention — then
    /// wakes sleepers only if any exist. Returns how many items were
    /// accepted (0 if the queue is closed).
    pub fn push_batch(&self, items: impl IntoIterator<Item = T>) -> usize {
        // Register as an in-flight producer *before* the closed check,
        // so `close` + `quiesce` brackets every push that could still
        // be accepted. SeqCst on (register; closed.load) here and on
        // (closed.store; pushers.load) in close/quiesce is a Dekker
        // pair: if our closed check misses the close, our registration
        // is SC-ordered before quiesce's count load, which therefore
        // waits for our linking to finish.
        struct PusherGuard<'q>(&'q AtomicUsize);
        impl Drop for PusherGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        self.pushers.fetch_add(1, Ordering::SeqCst);
        let _guard = PusherGuard(&self.pushers);
        if self.closed.load(Ordering::SeqCst) {
            return 0;
        }
        let items: Vec<T> = items.into_iter().collect();
        let added = items.len();
        if added == 0 {
            return 0;
        }
        let seg = Segment::alloc(items);
        // AcqRel swap: Release publishes the fully initialised segment
        // (slot writes happen-before any consumer that reaches it via a
        // pointer chain rooted in this store); Acquire lets us link onto
        // whatever segment state the previous swapper published.
        let prev = self.tail.swap(seg, Ordering::AcqRel);
        // SAFETY: `prev` cannot have been freed. Reclamation requires a
        // segment to be unlinked from `head`, which requires its `next`
        // to be non-null — and `next` is set exactly once, by the
        // producer that swapped it out of `tail`, i.e. by *us*, below.
        // Release: the consumer that Acquires this `next` pointer sees
        // the new segment's slots.
        unsafe { (*prev).next.store(seg, Ordering::Release) };
        // Dekker handshake with `pop`'s sleeper registration. Ours is
        // (publish; fence; load sleepers); the consumer's is (register;
        // fence; re-inspect queue). The SeqCst fences totally order the
        // two store→load patterns: if our sleepers load misses a parked
        // consumer, that consumer's re-inspection comes after our
        // publish and finds the items.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            // Taking the lock orders the notify against a sleeper that
            // has registered but not yet parked (it holds the lock from
            // registration to wait).
            let _guard = self.sleep_lock.lock().unwrap();
            self.ready.notify_all();
        }
        added
    }

    /// The lock-free claim path: takes one item if any segment has one,
    /// advancing and retiring drained segments along the way.
    fn try_pop_fast(&self) -> Option<T> {
        let guard = PopperGuard::enter(self);
        let result = loop {
            // Acquire: synchronises with the Release that published this
            // pointer (producer's `next` store or another consumer's
            // head CAS), making the segment's slots visible.
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: `head` is reachable, hence not retired: segments
            // are retired only after `head` is CAS'd past them, and
            // freed only after a grace period that `guard` blocks.
            let seg = unsafe { &*head };
            if seg.claim.load(Ordering::Relaxed) < seg.len {
                // Relaxed: the claim cursor only allocates indices; the
                // slot contents were published by the pointer Acquire
                // above, not by this counter.
                let i = seg.claim.fetch_add(1, Ordering::Relaxed);
                if i < seg.len {
                    // SAFETY: index `i` is exclusively ours (fetch_add).
                    break Some(unsafe { seg.read(i) });
                }
            }
            // Segment drained (or overshot by racing pollers): advance.
            let next = seg.next.load(Ordering::Acquire);
            if next.is_null() {
                break None; // nothing linked beyond this segment
            }
            // AcqRel: Release re-publishes `next`'s slots for consumers
            // that reach it via `head`; Acquire on failure reloads.
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // We unlinked it; park it until a verified-quiet flush
                // (see `flush_retired`) proves nobody can hold it.
                self.retired.lock().unwrap().push(head);
            }
        };
        drop(guard); // may flush retired segments
        result
    }

    /// Frees the retired segments, but only at a **verified-quiet**
    /// moment: the popper count must read zero while the retirement
    /// lock is held, otherwise the flush bails and a later exit retries.
    ///
    /// Why a verified zero makes every free safe: let T be this
    /// flush's zero-reading load (under the lock). Every write to
    /// `poppers` is an RMW, so all its writes form one reads-from
    /// chain. A retired segment S was unlinked by some popper F, and
    /// F's exit decrement precedes T's read point (were F still inside,
    /// the count could not read zero — an unmatched enter before the
    /// read point shows up in the sum). Any popper G entering after the
    /// read point has its `fetch_add` (Acquire) downstream of F's exit
    /// (Release) on that RMW chain, so F's unlink-CAS happens-before
    /// G's `head` load: G reads the post-CAS head and can never reach
    /// S. Any popper that entered before the read point has exited
    /// before it — the zero again. So at T nobody holds S and nobody
    /// ever will. (A *stale* zero cannot be mis-read either: the bail
    /// check simply runs again at a later exit, so frees are only
    /// delayed, never unsafe — the check read reading zero IS the
    /// grace-period proof.) Without the re-check, a flusher delayed
    /// between its zero crossing and this lock could free a segment
    /// retired after its crossing while a newer popper still held a
    /// stale pointer to it.
    ///
    /// Producers never follow links backwards — the only producer that
    /// touches a segment after it leaves `tail` is its swapper, whose
    /// single `next` store precedes retirement — so the popper count is
    /// the only epoch that matters.
    fn flush_retired(&self) {
        let mut retired = self.retired.lock().unwrap();
        if self.poppers.load(Ordering::SeqCst) != 0 {
            // Someone is (or may be) inside the fast path holding a
            // possibly stale segment pointer; their exit will flush.
            return;
        }
        for ptr in retired.drain(..) {
            // SAFETY: unreachable + verified grace period, as argued
            // above. Retirement implies the claim cursor reached `len`,
            // so every slot was claimed, and the grace period implies
            // every claimed read completed: no live `T` remains.
            unsafe {
                debug_assert!((*ptr).claim.load(Ordering::Relaxed) >= (*ptr).len);
                drop(Box::from_raw(ptr));
            }
        }
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// *and drained* (`None`).
    pub fn pop(&self) -> Option<T> {
        loop {
            if let Some(item) = self.try_pop_fast() {
                return Some(item);
            }
            if self.closed.load(Ordering::SeqCst) {
                // Conclusive drain check: everything linked before the
                // close we just observed is visible to this re-poll.
                return self.try_pop_fast();
            }
            // Condvar slow path. Register, then re-check under the
            // Dekker handshake (see `push_batch`) before parking.
            let guard = self.sleep_lock.lock().unwrap();
            self.sleepers.fetch_add(1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if let Some(item) = self.try_pop_fast() {
                self.sleepers.fetch_sub(1, Ordering::Relaxed);
                return Some(item);
            }
            if !self.closed.load(Ordering::SeqCst) {
                // Holding the lock from registration to wait closes the
                // register→park window: a producer that saw us must take
                // the lock to notify and therefore waits until we park.
                let _unused = self.ready.wait(guard).unwrap();
            }
            self.sleepers.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.try_pop_fast()
    }

    /// Closes the queue: future pushes are rejected and consumers drain
    /// the remaining items, then observe `None`. See the module docs for
    /// the (advisory) interaction with concurrent pushes.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.sleep_lock.lock().unwrap();
        self.ready.notify_all();
    }

    /// `true` once [`Injector::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Waits (spinning with yields; the window is a few instructions)
    /// until no producer is mid-push. Called after [`Injector::close`],
    /// this upgrades the advisory close to an exact one: any push that
    /// slipped past the closed check is now either fully linked (and
    /// drainable via [`Injector::try_pop`]) or was rejected — nothing
    /// can be accepted later. Shutdown paths use `close` + `quiesce` +
    /// a `try_pop` drain to guarantee no accepted item is stranded.
    pub fn quiesce(&self) {
        // SeqCst: the other side of the Dekker pair in `push_batch` —
        // a zero count here means every push that could still be
        // accepted has fully linked (the guard's decrement releases
        // the linking writes).
        while self.pushers.load(Ordering::SeqCst) > 0 {
            std::thread::yield_now();
        }
    }

    /// Items currently queued: a walk of the live segments. Exact at
    /// quiescence; a racy-but-bounded snapshot while producers and
    /// consumers are in flight. O(unconsumed batches), intended for
    /// backpressure signals and tests, not hot paths.
    pub fn len(&self) -> usize {
        let _guard = PopperGuard::enter(self);
        let mut total = 0usize;
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: reachable from head and inside the popper guard.
            let seg = unsafe { &*cur };
            let claimed = seg.claim.load(Ordering::Relaxed).min(seg.len);
            total += seg.len - claimed;
            cur = seg.next.load(Ordering::Acquire);
        }
        total
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Exclusive access (`&mut self`): no concurrent producers or
        // consumers, so free the retired list outright and walk the
        // chain, dropping unconsumed values.
        for ptr in std::mem::take(&mut *self.retired.get_mut().unwrap()) {
            // SAFETY: exclusive access; retired segments are drained.
            unsafe { drop(Box::from_raw(ptr)) };
        }
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; each segment freed once.
            unsafe {
                let seg = &mut *cur;
                let next = *seg.next.get_mut();
                let claimed = (*seg.claim.get_mut()).min(seg.len);
                for i in claimed..seg.len {
                    (*seg.slots[i].get()).assume_init_drop();
                }
                drop(Box::from_raw(cur));
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = Injector::new();
        q.push(1);
        q.push_batch([2, 3, 4]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.try_pop(), Some(4));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_none() {
        let q = Injector::new();
        assert_eq!(q.push_batch([1, 2]), 2);
        q.close();
        assert_eq!(q.push_batch([3]), 0, "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn drop_releases_unconsumed_items() {
        let probe = Arc::new(());
        {
            let q = Injector::new();
            q.push_batch((0..10).map(|_| Arc::clone(&probe)));
            drop(q.pop());
            drop(q.try_pop());
            assert_eq!(Arc::strong_count(&probe), 9);
        }
        assert_eq!(Arc::strong_count(&probe), 1, "drop frees the rest once");
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let q = Arc::new(Injector::new());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    q.push_batch((0..100).map(|i| p * 1000 + i));
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
