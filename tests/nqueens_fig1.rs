//! F1 — behavioural reproduction of the paper's Figure 1.
//!
//! The n-queens guest has the exact shape of the listing: a guess per
//! column, a fail on conflict, a print per completed board, and a final
//! fail so the engine enumerates *all* answers. No undo code exists
//! anywhere in the guest.

use std::collections::HashSet;

use lwsnap_core::strategy::{BestFirst, Bfs, Dfs, RandomWalk};
use lwsnap_core::{Engine, EngineConfig, StopReason};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

/// OEIS A000170.
const SOLUTION_COUNTS: [(u64, u64); 5] = [(4, 2), (5, 10), (6, 4), (7, 40), (8, 92)];

fn boards_from(transcript: &str, n: usize) -> Vec<Vec<u8>> {
    transcript
        .lines()
        .map(|line| {
            assert_eq!(line.len(), n, "board line `{line}`");
            line.bytes().map(|b| b - b'0').collect()
        })
        .collect()
}

fn assert_valid_board(rows: &[u8]) {
    let n = rows.len() as i64;
    for c1 in 0..rows.len() {
        for c2 in c1 + 1..rows.len() {
            let (r1, r2) = (rows[c1] as i64, rows[c2] as i64);
            assert!(r1 < n && r2 < n);
            assert_ne!(r1, r2, "row clash");
            assert_ne!(
                (r1 - r2).abs(),
                (c1 as i64 - c2 as i64).abs(),
                "diagonal clash"
            );
        }
    }
}

#[test]
fn fig1_enumerates_all_answers_for_known_sizes() {
    for (n, expected) in SOLUTION_COUNTS {
        let program = assemble_source(&nqueens_source(n, true, true)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, program.boot().unwrap());
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(result.stats.solutions, expected, "N={n}");
        let boards = boards_from(&result.transcript_str(), n as usize);
        assert_eq!(boards.len() as u64, expected);
        for board in &boards {
            assert_valid_board(board);
        }
        // All distinct.
        let unique: HashSet<_> = boards.iter().collect();
        assert_eq!(unique.len() as u64, expected);
    }
}

#[test]
fn all_strategies_find_the_same_solution_set() {
    let n = 6u64;
    let program = assemble_source(&nqueens_source(n, true, true)).unwrap();
    let run = |strategy: StrategyKind| -> HashSet<String> {
        let mut interp = Interp::new();
        let result = match strategy {
            StrategyKind::Dfs => Engine::new(Dfs::new()).run(&mut interp, program.boot().unwrap()),
            StrategyKind::Bfs => Engine::new(Bfs::new()).run(&mut interp, program.boot().unwrap()),
            StrategyKind::Astar => {
                Engine::new(BestFirst::new()).run(&mut interp, program.boot().unwrap())
            }
            StrategyKind::Random => {
                Engine::new(RandomWalk::new(7)).run(&mut interp, program.boot().unwrap())
            }
        };
        result.transcript_str().lines().map(str::to_owned).collect()
    };
    enum StrategyKind {
        Dfs,
        Bfs,
        Astar,
        Random,
    }
    let dfs = run(StrategyKind::Dfs);
    assert_eq!(dfs.len(), 4);
    assert_eq!(dfs, run(StrategyKind::Bfs), "BFS finds the same set");
    assert_eq!(dfs, run(StrategyKind::Astar), "A* finds the same set");
    assert_eq!(
        dfs,
        run(StrategyKind::Random),
        "random order finds the same set"
    );
}

#[test]
fn dfs_enumerates_in_lexicographic_order() {
    // DFS + extension order = lexicographically sorted boards.
    let program = assemble_source(&nqueens_source(6, true, true)).unwrap();
    let mut engine = Engine::new(Dfs::new());
    let result = engine.run(&mut Interp::new(), program.boot().unwrap());
    let transcript = result.transcript_str();
    let lines: Vec<&str> = transcript.lines().collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

#[test]
fn solution_limit_cuts_enumeration() {
    let program = assemble_source(&nqueens_source(8, false, true)).unwrap();
    let config = EngineConfig {
        max_solutions: Some(10),
        ..Default::default()
    };
    let mut engine = Engine::with_config(Dfs::new(), config);
    let result = engine.run(&mut Interp::new(), program.boot().unwrap());
    assert_eq!(result.stop, StopReason::SolutionLimit);
    assert_eq!(result.stats.solutions, 10);
}

#[test]
fn snapshot_accounting_matches_tree_shape() {
    // For a DFS run, every snapshot is created once and every extension
    // either continues inline (ext 0) or is restored later.
    let program = assemble_source(&nqueens_source(6, false, true)).unwrap();
    let mut engine = Engine::new(Dfs::new());
    let result = engine.run(&mut Interp::new(), program.boot().unwrap());
    let s = result.stats;
    assert_eq!(
        s.inline_continues, s.snapshots_created,
        "one inline continue per guess"
    );
    assert_eq!(
        s.restores,
        s.snapshots_created * 5,
        "fan-out 6: five queued siblings per guess"
    );
    assert_eq!(s.extensions_evaluated, 1 + s.inline_continues + s.restores);
    assert!(
        s.snapshots_peak <= 7,
        "DFS keeps O(depth) snapshots live: {}",
        s.snapshots_peak
    );
}
