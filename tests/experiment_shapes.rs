//! Fast, deterministic assertions of every experiment's *shape*.
//!
//! `EXPERIMENTS.md` reports wall-clock measurements from the Criterion
//! benches; these tests pin the underlying invariants so a regression
//! that would flip an experiment's conclusion fails CI immediately.

use lwsnap_core::strategy::{BestFirst, Bfs, Dfs, SmaStar};
use lwsnap_core::{Engine, EngineStats};
use lwsnap_mem::{AddressSpace, Prot, RegionKind, PAGE_SIZE};
use lwsnap_solver::{IncrementalFamily, SolveResult, Solver, SolverService};
use lwsnap_vm::{assemble_source, programs, Interp};

const BASE: u64 = 0x10_0000;

fn space_with(pages: u64) -> AddressSpace {
    let mut asp = AddressSpace::new();
    asp.map_fixed(
        BASE,
        pages * PAGE_SIZE as u64,
        Prot::RW,
        RegionKind::Anon,
        "ram",
    )
    .unwrap();
    for p in 0..pages {
        asp.write_u64(BASE + p * PAGE_SIZE as u64, p).unwrap();
    }
    asp
}

// --------------------------------------------------------------------
// E2: snapshots are O(1); copies are O(space).
// --------------------------------------------------------------------

#[test]
fn e2_snapshot_work_is_constant_in_space_size() {
    // Counter-based (not timing-based): a snapshot must copy zero pages
    // and zero nodes regardless of how big the space is.
    for pages in [16u64, 1024, 16384] {
        let asp = space_with(pages);
        let before = *asp.stats();
        let snap = asp.snapshot();
        assert_eq!(
            *snap.stats(),
            before,
            "snapshot performed no MMU work for {pages} pages"
        );
        assert!(snap.same_table_root(&asp));
    }
}

#[test]
fn e2_divergence_work_is_constant_in_space_size() {
    for pages in [16u64, 1024, 16384] {
        let mut asp = space_with(pages);
        let _snap = asp.snapshot();
        let before = *asp.stats();
        asp.write_u64(BASE, 1).unwrap();
        let d = asp.stats().delta(&before);
        assert_eq!(
            d.cow_page_copies, 1,
            "one page copied for {pages}-page space"
        );
        assert!(d.node_copies <= 4, "at most one node per radix level");
    }
}

// --------------------------------------------------------------------
// E3: copied bytes ≈ k * PAGE_SIZE, independent of M.
// --------------------------------------------------------------------

#[test]
fn e3_copied_bytes_track_pages_touched() {
    for m in [64u64, 4096] {
        for k in [1u64, 8, 32] {
            let parent = space_with(m);
            let mut child = parent.snapshot();
            let before = *child.stats();
            for p in 0..k {
                child.write_u64(BASE + p * PAGE_SIZE as u64, 0xff).unwrap();
            }
            let d = child.stats().delta(&before);
            assert_eq!(d.bytes_copied(), k * PAGE_SIZE as u64, "m={m} k={k}");
        }
    }
}

#[test]
fn e3_guest_workload_dirty_pages_bounded_by_touch_count() {
    // The VM workload touches `touch` pages per step; after a snapshot
    // the child's CoW copies must be ≤ touch + bookkeeping pages
    // (stack), never the whole buffer.
    let touch = 4u64;
    let buffer_pages = 256u64;
    let program = assemble_source(&programs::search_workload_source(
        1,
        2,
        0,
        touch,
        buffer_pages,
    ))
    .unwrap();
    let mut engine = Engine::new(Dfs::new());
    let mut interp = Interp::new();
    let result = engine.run(&mut interp, program.boot().unwrap());
    assert_eq!(result.stats.solutions, 2);
    // Sanity on the run itself (detailed counters live in lwsnap-mem).
    assert_eq!(result.stats.snapshots_created, 1);
}

// --------------------------------------------------------------------
// E4: incremental solving does not redo inherited inference.
// --------------------------------------------------------------------

#[test]
fn e4_incremental_conflicts_do_not_exceed_scratch_rework() {
    let fam = IncrementalFamily::new(100, 10, 42);
    // Incremental: one solver accumulates clauses and inference.
    let mut solver = Solver::new();
    for clause in &fam.base().clauses {
        solver.add_clause(clause);
    }
    solver.solve();
    for i in 0..4 {
        for clause in fam.increment(i) {
            solver.add_clause(&clause);
        }
        solver.solve();
    }
    let incremental_conflicts = solver.stats().conflicts;

    // Scratch: re-solve every prefix.
    let mut scratch_conflicts = 0;
    for upto in 0..=4 {
        let (_, stats) = SolverService::solve_scratch(&fam.combined(upto).clauses);
        scratch_conflicts += stats.conflicts;
    }
    assert!(
        incremental_conflicts <= scratch_conflicts,
        "incremental {incremental_conflicts} must not exceed scratch {scratch_conflicts}"
    );
}

// --------------------------------------------------------------------
// E5: the service answers from parent snapshots.
// --------------------------------------------------------------------

#[test]
fn e5_service_final_answers_match_scratch() {
    let fam = IncrementalFamily::new(60, 6, 99);
    let mut service = SolverService::new();
    let mut cur = service.solve(service.root(), &fam.base().clauses).unwrap();
    for i in 0..3 {
        cur = service.solve(cur.problem, &fam.increment(i)).unwrap();
    }
    let (scratch, _) = SolverService::solve_scratch(&fam.combined(3).clauses);
    assert_eq!(cur.result, scratch, "same verdict through either route");
    if cur.result == SolveResult::Sat {
        let model = cur.model.unwrap();
        for clause in &fam.combined(3).clauses {
            assert!(clause
                .iter()
                .any(|l| { model.get(l.var().index()).copied().unwrap_or(false) != l.sign() }));
        }
    }
}

// --------------------------------------------------------------------
// E8: strategy memory shapes.
// --------------------------------------------------------------------

fn run_bits(depth: u64, strategy: impl lwsnap_core::strategy::Strategy) -> EngineStats {
    let program = assemble_source(&programs::bitstrings_source(depth)).unwrap();
    let mut engine = Engine::new(strategy);
    let mut interp = Interp::new();
    engine.run(&mut interp, program.boot().unwrap()).stats
}

#[test]
fn e8_dfs_memory_logarithmic_bfs_linear() {
    let depth = 9;
    let dfs = run_bits(depth, Dfs::new());
    let bfs = run_bits(depth, Bfs::new());
    assert_eq!(dfs.solutions, 1 << depth);
    assert_eq!(bfs.solutions, 1 << depth);
    assert!(
        dfs.frontier_peak as u64 <= depth * 2,
        "DFS frontier O(depth): {}",
        dfs.frontier_peak
    );
    assert!(
        bfs.frontier_peak as u64 >= 1 << (depth - 1),
        "BFS frontier holds a level: {}",
        bfs.frontier_peak
    );
    assert!(dfs.snapshots_peak < bfs.snapshots_peak);
    // DFS does one restore per queued sibling; BFS restores every step.
    assert!(dfs.inline_continues > 0);
    assert_eq!(bfs.inline_continues, 0);
}

#[test]
fn e8_sma_star_caps_memory_at_the_configured_bound() {
    let depth = 9;
    let unbounded = run_bits(depth, BestFirst::new());
    let bounded = run_bits(depth, SmaStar::new(32));
    assert!(unbounded.frontier_peak > 32);
    assert!(bounded.frontier_peak <= 32);
    assert!(bounded.dropped_extensions > 0);
    assert!(
        bounded.snapshots_peak <= unbounded.snapshots_peak,
        "bounding the frontier bounds live snapshots"
    );
}

// --------------------------------------------------------------------
// E7: fork-engine decision cost is measured in the native crate; here we
// pin the snapshot engine's side of the comparison.
// --------------------------------------------------------------------

#[test]
fn e7_snapshot_engine_per_decision_bookkeeping() {
    let depth = 10;
    let program = assemble_source(&programs::guess_fail_source(depth, 2)).unwrap();
    let mut engine = Engine::new(Dfs::new());
    let mut interp = Interp::new();
    let result = engine.run(&mut interp, program.boot().unwrap());
    let internal = (1u64 << depth) - 1;
    assert_eq!(result.stats.snapshots_created, internal);
    assert_eq!(result.stats.failures, 1 << depth);
    // Every snapshot was reclaimed (peak stays at tree depth).
    assert!(result.stats.snapshots_peak as u64 <= depth + 1);
}

// --------------------------------------------------------------------
// Ablation shapes (see the `ablations` bench for timings).
// --------------------------------------------------------------------

#[test]
fn ablation_no_inline_is_equivalent_but_restores_everything() {
    let program = assemble_source(&programs::nqueens_source(6, true, true)).unwrap();
    let mut fast = Engine::new(Dfs::new());
    let fast_result = fast.run(&mut Interp::new(), program.boot().unwrap());
    let mut slow = Engine::new(Dfs::without_inline());
    let slow_result = slow.run(&mut Interp::new(), program.boot().unwrap());
    // Identical semantics...
    assert_eq!(fast_result.stats.solutions, slow_result.stats.solutions);
    assert_eq!(
        fast_result.transcript, slow_result.transcript,
        "same DFS order"
    );
    // ...different mechanics.
    assert!(fast_result.stats.inline_continues > 0);
    assert_eq!(slow_result.stats.inline_continues, 0);
    assert_eq!(
        slow_result.stats.restores,
        fast_result.stats.restores + fast_result.stats.inline_continues,
        "every fast-path continue became a restore"
    );
}

#[test]
fn ablation_keep_all_snapshots_grows_with_tree() {
    let program = assemble_source(&programs::nqueens_source(6, false, true)).unwrap();
    let config = lwsnap_core::EngineConfig {
        keep_all_snapshots: true,
        ..Default::default()
    };
    let mut engine = Engine::with_config(Dfs::new(), config);
    let result = engine.run(&mut Interp::new(), program.boot().unwrap());
    assert_eq!(
        result.stats.snapshots_peak as u64, result.stats.snapshots_created,
        "nothing reclaimed"
    );
    let mut reclaiming = Engine::new(Dfs::new());
    let base = reclaiming.run(&mut Interp::new(), program.boot().unwrap());
    assert_eq!(
        base.stats.solutions, result.stats.solutions,
        "semantics unchanged"
    );
    assert!(
        base.stats.snapshots_peak <= 7,
        "reclaiming keeps O(depth) alive"
    );
}
