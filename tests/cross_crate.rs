//! Cross-crate integration: the full stack working together.

use lwsnap_core::strategy::Dfs;
use lwsnap_core::{replay_dfs, Engine, InterposePolicy, Outcome, StopReason};
use lwsnap_fs::{FsView, Volume};
use lwsnap_prolog::{Machine, NQUEENS_PROGRAM};
use lwsnap_symex::{PathEnd, SymExec};
use lwsnap_vm::{assemble_source, Interp};

/// The three backtracking implementations agree on solution counts.
#[test]
fn engines_agree_on_nqueens_counts() {
    for (n, expected) in [(4u64, 2u64), (5, 10), (6, 4)] {
        // 1. Snapshot engine on the SVM-64 guest.
        let program =
            assemble_source(&lwsnap_vm::programs::nqueens_source(n, false, true)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let result = engine.run(&mut Interp::new(), program.boot().unwrap());
        assert_eq!(result.stats.solutions, expected, "snapshot engine N={n}");

        // 2. Replay oracle on a host closure.
        let replay = replay_dfs(
            |ctx| {
                let size = n as usize;
                let mut col = vec![false; size];
                let mut d1 = vec![false; 2 * size];
                let mut d2 = vec![false; 2 * size];
                for c in 0..size {
                    let r = ctx.guess(n) as usize;
                    if col[r] || d1[r + c] || d2[size + r - c] {
                        return Outcome::Failed;
                    }
                    col[r] = true;
                    d1[r + c] = true;
                    d2[size + r - c] = true;
                }
                Outcome::Solution
            },
            None,
        );
        assert_eq!(replay.stats.solutions, expected, "replay N={n}");

        // 3. Prolog.
        let mut m = Machine::new();
        m.consult(NQUEENS_PROGRAM).unwrap();
        assert_eq!(
            m.count_solutions(&format!("queens({n}, Qs)")).unwrap(),
            expected
        );
    }
}

/// A guest that reads input from a file, writes results to another, and
/// backtracks: file side effects stay branch-private, console output
/// streams through, and the input file is shared read-only by all
/// branches.
#[test]
fn file_io_is_contained_per_branch() {
    let source = r#"
.text
_start:
    mov  rdi, 3
    mov  rax, 1000        ; which = sys_guess(3)
    syscall
    mov  r15, rax
    ; read the 1-byte input file
    mov  rdi, inpath
    mov  rsi, 0           ; O_RDONLY
    mov  rax, 2
    syscall
    mov  r14, rax
    mov  rdi, r14
    mov  rsi, buf
    mov  rdx, 1
    mov  rax, 0           ; read
    syscall
    ; out = input + which; write it to a per-branch result file
    mov  rbx, buf
    ld1  rcx, [rbx]
    add  rcx, r15
    st1  [rbx], rcx
    mov  rdi, outpath
    mov  rsi, 577         ; O_WRONLY|O_CREAT|O_TRUNC (0o1101)
    mov  rax, 2
    syscall
    mov  r13, rax
    mov  rdi, r13
    mov  rsi, buf
    mov  rdx, 1
    mov  rax, 1           ; write
    syscall
    ; echo to console (escapes containment)
    mov  rdi, 1
    mov  rsi, buf
    mov  rdx, 1
    mov  rax, 1
    syscall
    mov  rax, 1001        ; fail: discard this branch's files
    syscall
.data
inpath:  .asciz "/in.txt"
outpath: .asciz "/out.txt"
buf:     .space 1
"#;
    let program = assemble_source(source).unwrap();
    let mut volume = Volume::new();
    volume.write_file("/in.txt", b"A").unwrap();
    let root = program.boot_with_fs(FsView::new(volume)).unwrap();
    let mut engine = Engine::new(Dfs::new());
    let result = engine.run(&mut Interp::new(), root);
    assert_eq!(result.stop, StopReason::Exhausted);
    // Console shows each branch's computed byte: 'A'+0, 'A'+1, 'A'+2.
    assert_eq!(result.transcript_str(), "ABC");
    // All three branches failed; their /out.txt never escaped.
    assert_eq!(result.stats.failures, 3);
}

/// Symbolic execution drives the whole stack: vm decodes, core forks
/// snapshots, symex tracks constraints, solver answers feasibility.
#[test]
fn symex_full_stack_password() {
    let password = b"k9!";
    let program = assemble_source(&lwsnap_symex::programs::password_source(password)).unwrap();
    let mut exec = SymExec::new();
    let mut engine = Engine::new(Dfs::new());
    engine.run(&mut exec, program.boot().unwrap());
    let success: Vec<_> = exec
        .cases
        .iter()
        .filter(|c| c.end == PathEnd::Exit(42))
        .collect();
    assert_eq!(success.len(), 1);
    assert_eq!(success[0].inputs, password);
}

/// Strict interposition policy turns unsupported syscalls into faults
/// that kill only the offending path.
#[test]
fn strict_policy_fails_paths_not_the_search() {
    let source = r#"
.text
_start:
    mov  rdi, 2
    mov  rax, 1000        ; guess(2)
    syscall
    cmp  rax, 0
    jz   misbehave
    mov  rax, 1003        ; emit: the good path succeeds
    syscall
    mov  rax, 1001
    syscall
misbehave:
    mov  rax, 9999        ; unsupported syscall
    syscall
    mov  rax, 1001
    syscall
"#;
    let program = assemble_source(source).unwrap();
    let policy = InterposePolicy {
        strict: true,
        ..Default::default()
    };
    let mut engine = Engine::new(Dfs::new());
    let mut interp = Interp::with_policy(policy);
    let result = engine.run(&mut interp, program.boot().unwrap());
    assert_eq!(result.stop, StopReason::Exhausted);
    assert_eq!(result.stats.faults, 1, "the misbehaving path faulted");
    assert_eq!(result.stats.solutions, 1, "the other path still completed");
}

/// The Prolog machine and the snapshot engine agree on a non-queens
/// problem too (map colouring as a cross-check).
#[test]
fn prolog_vs_engine_map_coloring() {
    // Four regions in a row, 3 colours, adjacent must differ:
    // 3 * 2 * 2 * 2 = 24 colourings.
    let mut m = Machine::new();
    m.consult(
        "color(r). color(g). color(b).
         diff(X, Y) :- color(X), color(Y), X \\= Y.
         row(A, B, C, D) :- color(A), diff(A, B), diff(B, C), diff(C, D).",
    )
    .unwrap();
    let prolog_count = m.count_solutions("row(A, B, C, D)").unwrap();
    assert_eq!(prolog_count, 24);

    // Same problem through replay backtracking.
    let replay = replay_dfs(
        |ctx| {
            let mut prev = u64::MAX;
            for _ in 0..4 {
                let c = ctx.guess(3);
                if c == prev {
                    return Outcome::Failed;
                }
                prev = c;
            }
            Outcome::Solution
        },
        None,
    );
    assert_eq!(replay.stats.solutions, 24);
}
