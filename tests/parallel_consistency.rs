//! Cross-crate guarantee: the work-stealing parallel engine finds the
//! exact solution set — and, under deterministic ordering, the exact
//! transcript — of the sequential DFS engine.
//!
//! Three workloads, per the paper's motivating applications:
//! * the Figure-1 n-queens guest running on the SVM-64 interpreter;
//! * a SAT enumeration guest (one `sys_guess(2)` per variable, clause
//!   check per assignment) over a generated 3-SAT formula;
//! * the S2E-style symbolic executor via the parallel symex driver
//!   (`par_explore`), whose per-path verdicts must equal a sequential
//!   exploration's.

use std::collections::HashSet;

use lwsnap_core::{strategy::Dfs, Engine, Exit, GuestState, ParallelEngine, Reg, StopReason};
use lwsnap_solver::{random_ksat, Cnf};
use lwsnap_symex::{par_explore, programs::branch_tree_source, SymExec, TestCase};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

#[test]
fn six_queens_parallel_matches_sequential() {
    let program = assemble_source(&nqueens_source(6, true, true)).unwrap();
    let sequential = Engine::new(Dfs::new()).run(&mut Interp::new(), program.boot().unwrap());
    assert_eq!(sequential.stats.solutions, 4, "6-queens has 4 answers");

    for workers in [2usize, 3, 8] {
        let parallel = ParallelEngine::new(workers).run(Interp::new, program.boot().unwrap());
        assert_eq!(parallel.stop, StopReason::Exhausted);

        // Identical solution *set* (boards, order-independent)...
        let seq_text = sequential.transcript_str();
        let par_text = parallel.transcript_str();
        let seq_set: HashSet<&str> = seq_text.lines().collect();
        let par_set: HashSet<&str> = par_text.lines().collect();
        assert_eq!(par_set, seq_set, "same boards at {workers} workers");

        // ...and the full deterministic-ordering guarantee: the merged
        // transcript and solution records are byte-identical.
        assert_eq!(parallel.transcript, sequential.transcript);
        assert_eq!(parallel.solutions.len(), sequential.solutions.len());
        for (p, s) in parallel.solutions.iter().zip(&sequential.solutions) {
            assert_eq!(p, s, "solution record mismatch at {workers} workers");
        }
        assert_eq!(parallel.stats.solutions, 4);
    }
}

/// A guest enumerating all satisfying assignments of `cnf` by guessing
/// one variable per depth and failing as soon as any clause is fully
/// falsified. State machine over registers: rbx = phase, rcx = number of
/// variables assigned, r12 = assignment bits.
fn sat_guest(cnf: Cnf) -> impl FnMut(&mut GuestState) -> Exit {
    let falsified = move |bits: u64, assigned: u64, clauses: &[Vec<lwsnap_solver::Lit>]| {
        clauses.iter().any(|clause| {
            clause.iter().all(|l| {
                let v = l.var().index() as u64;
                // A clause is dead only when every literal is assigned
                // and false. `sign()` is true for negative literals.
                v < assigned && (bits >> v & 1 == 1) == l.sign()
            })
        })
    };
    move |st: &mut GuestState| loop {
        let phase = st.regs.get(Reg::Rbx);
        let assigned = st.regs.get(Reg::Rcx);
        let bits = st.regs.get(Reg::R12);
        match phase {
            0 => {
                if falsified(bits, assigned, &cnf.clauses) {
                    return Exit::Fail;
                }
                if assigned == cnf.num_vars as u64 {
                    st.regs.set(Reg::Rbx, 2);
                    return Exit::Output {
                        fd: 1,
                        data: format!("{bits:0w$b}\n", w = cnf.num_vars).into_bytes(),
                    };
                }
                st.regs.set(Reg::Rbx, 1);
                return Exit::Guess { n: 2, hint: None };
            }
            1 => {
                let choice = st.regs.get(Reg::Rax);
                st.regs.set(Reg::R12, bits | choice << assigned);
                st.regs.set(Reg::Rcx, assigned + 1);
                st.regs.set(Reg::Rbx, 0);
            }
            2 => {
                st.regs.set(Reg::Rbx, 3);
                return Exit::Emit;
            }
            _ => return Exit::Fail,
        }
    }
}

/// Host-side model check used to validate what the guests report.
fn brute_force_models(cnf: &Cnf) -> HashSet<u64> {
    (0..1u64 << cnf.num_vars)
        .filter(|bits| {
            cnf.clauses.iter().all(|clause| {
                clause
                    .iter()
                    .any(|l| (bits >> l.var().index() & 1 == 1) != l.sign())
            })
        })
        .collect()
}

#[test]
fn sat_enumeration_parallel_matches_sequential() {
    // Deterministic, satisfiable-but-constrained instance: 10 vars at a
    // sub-phase-transition clause ratio.
    let cnf = random_ksat(10, 30, 3, 0xc0ffee);
    let expected = brute_force_models(&cnf);
    assert!(!expected.is_empty(), "workload should be satisfiable");

    let sequential = Engine::new(Dfs::new()).run(&mut sat_guest(cnf.clone()), GuestState::new());
    assert_eq!(sequential.stats.solutions as usize, expected.len());

    for workers in [2usize, 4] {
        let cnf = cnf.clone();
        let parallel =
            ParallelEngine::new(workers).run(move || sat_guest(cnf.clone()), GuestState::new());
        assert_eq!(parallel.stop, StopReason::Exhausted);

        // Solution set: parse the reported assignments and compare with
        // the brute-force models.
        let models: HashSet<u64> = parallel
            .transcript_str()
            .lines()
            .map(|line| u64::from_str_radix(line, 2).unwrap())
            .collect();
        assert_eq!(models, expected, "model set differs at {workers} workers");

        // Deterministic ordering: transcript identical to sequential.
        assert_eq!(parallel.transcript, sequential.transcript);
        assert_eq!(parallel.stats.solutions, sequential.stats.solutions);
        assert_eq!(
            parallel.stats.extensions_evaluated, sequential.stats.extensions_evaluated,
            "parallel run must do the same work, just elsewhere"
        );
    }
}

#[test]
fn symex_par_explore_matches_sequential_verdicts() {
    // 2^6 = 64 feasible paths, each ended by a solver-validated test
    // case. The parallel driver must reproduce the sequential verdict
    // set exactly (canonical order), at any worker count.
    let src = branch_tree_source(6);
    let prog = assemble_source(&src).unwrap();
    let mut exec = SymExec::new();
    let sequential = Engine::new(Dfs::new()).run(&mut exec, prog.boot().unwrap());
    assert_eq!(sequential.stop, StopReason::Exhausted);
    let mut seq_cases = exec.cases.clone();
    TestCase::canonical_sort(&mut seq_cases);
    assert_eq!(seq_cases.len(), 64);

    for workers in [2usize, 4] {
        let prog = assemble_source(&src).unwrap();
        let report = par_explore(prog.boot().unwrap(), workers);
        assert_eq!(report.run.stop, StopReason::Exhausted);
        assert_eq!(
            report.cases, seq_cases,
            "symex verdicts differ at {workers} workers"
        );
        assert_eq!(report.stats.forks, exec.stats.forks);
        assert_eq!(report.stats.tests_generated, exec.stats.tests_generated);
        assert_eq!(
            report.run.stats.extensions_evaluated,
            sequential.stats.extensions_evaluated
        );
    }
}
