//! Experiment E8 demo — flexible search strategies over one guest (§3.1).
//!
//! The same weighted-search guest runs under DFS, BFS, A* (driven by
//! `sys_guess_hint` distance vectors), memory-bounded SM-A*, and an
//! externally-controlled scheduler. The program never changes — only the
//! strategy object handed to the engine does, which is the paper's point:
//! scheduling policy is separated from the partial candidates.
//!
//! The problem: route-finding on an implicit weighted grid. The guest
//! walks from (0,0) to (size-1,size-1); each step guesses one of two
//! moves (right = cost of the destination column, down = cost of the
//! destination row), reports g (cost so far) and h (Manhattan distance)
//! through the extended guess call, and emits on arrival.
//!
//! ```sh
//! cargo run --release --example puzzle_strategies [size]
//! ```

use lwsnap_core::strategy::{BestFirst, Bfs, Dfs, External, SmaStar, Strategy};
use lwsnap_core::{Engine, EngineConfig, Exit, GuessHint, Guest, GuestState, Reg};

/// Grid-walk guest as a host state machine (registers carry the walk).
struct GridWalk {
    size: u64,
}

// Register roles: r12 = x, r13 = y, r14 = g (path cost), rbx = phase.
impl Guest for GridWalk {
    fn resume(&mut self, st: &mut GuestState) -> Exit {
        loop {
            let (x, y) = (st.regs.get(Reg::R12), st.regs.get(Reg::R13));
            let g = st.regs.get(Reg::R14);
            match st.regs.get(Reg::Rbx) {
                // Apply the move chosen by the engine.
                1 => {
                    let (nx, ny) = if st.regs.get(Reg::Rax) == 0 {
                        (x + 1, y)
                    } else {
                        (x, y + 1)
                    };
                    // Cost: moving right pays the destination column
                    // parity, moving down pays double row parity + 1.
                    let cost = if st.regs.get(Reg::Rax) == 0 {
                        1 + (nx % 3)
                    } else {
                        2 + (ny % 2)
                    };
                    st.regs.set(Reg::R12, nx);
                    st.regs.set(Reg::R13, ny);
                    st.regs.set(Reg::R14, g + cost);
                    st.regs.set(Reg::Rbx, 0);
                }
                2 => {
                    st.regs.set(Reg::Rbx, 3);
                    return Exit::Emit;
                }
                3 => return Exit::Fail,
                _ => {
                    let goal = self.size - 1;
                    if x == goal && y == goal {
                        st.regs.set(Reg::Rbx, 2);
                        return Exit::Output {
                            fd: 1,
                            data: format!("reached goal, cost {g}\n").into_bytes(),
                        };
                    }
                    // Off-grid walks fail.
                    if x > goal || y > goal {
                        return Exit::Fail;
                    }
                    st.regs.set(Reg::Rbx, 1);
                    // h = Manhattan distance (admissible: every move costs >= 1).
                    let h = (goal - x) + (goal - y);
                    return Exit::Guess {
                        n: 2,
                        hint: Some(GuessHint { g, h: vec![h, h] }),
                    };
                }
            }
        }
    }
}

fn run(name: &str, strategy: Box<dyn Strategy>, size: u64) {
    struct Boxed(Box<dyn Strategy>);
    impl Strategy for Boxed {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn expand(
            &mut self,
            s: lwsnap_core::SnapshotId,
            n: u64,
            h: Option<&GuessHint>,
            d: u64,
        ) -> Option<u64> {
            self.0.expand(s, n, h, d)
        }
        fn next(&mut self) -> Option<lwsnap_core::strategy::ExtensionRef> {
            self.0.next()
        }
        fn frontier_len(&self) -> usize {
            self.0.frontier_len()
        }
        fn peak_frontier(&self) -> usize {
            self.0.peak_frontier()
        }
        fn take_dropped(&mut self) -> Vec<lwsnap_core::strategy::ExtensionRef> {
            self.0.take_dropped()
        }
        fn total_dropped(&self) -> u64 {
            self.0.total_dropped()
        }
    }
    let config = EngineConfig {
        max_solutions: Some(1),
        ..Default::default()
    };
    let mut engine = Engine::with_config(Boxed(strategy), config);
    let start = std::time::Instant::now();
    let result = engine.run(&mut GridWalk { size }, GuestState::new());
    let elapsed = start.elapsed();
    let cost = result
        .transcript_str()
        .lines()
        .next()
        .and_then(|line| line.rsplit(' ').next())
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    println!(
        "{:<22} first-solution cost {:>4} | {:>8} steps | frontier peak {:>6} | snapshots peak {:>6} | dropped {:>5} | {elapsed:?}",
        name,
        cost,
        result.stats.extensions_evaluated,
        result.stats.frontier_peak,
        result.stats.snapshots_peak,
        result.stats.dropped_extensions,
    );
}

fn main() {
    let size: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    println!(
        "weighted grid walk to ({0},{0}); one engine, five schedulers\n",
        size - 1
    );
    run("dfs", Box::new(Dfs::new()), size);
    run("bfs", Box::new(Bfs::new()), size);
    run("a* (guess hints)", Box::new(BestFirst::new()), size);
    run("sm-a* (cap 64)", Box::new(SmaStar::new(64)), size);
    // External scheduler: an "external entity" that always picks the
    // most recently created extension (a LIFO imposed from outside).
    run(
        "external (newest-first)",
        Box::new(External::new(|pool| Some(pool.len() - 1))),
        size,
    );
    println!("\nA* finds the cheapest route; SM-A* bounds the frontier; DFS commits fast.");
}
