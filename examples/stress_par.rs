//! Concurrency stress for the parallel engine.
//!
//! Runs the 6-queens search many times across several worker counts,
//! asserting the solution count every iteration. Exists to flush out
//! rare scheduling races (it caught a frontier-counter underflow that
//! could wedge a run); run it after touching `lwsnap_core::parallel`:
//!
//! ```sh
//! cargo run --release --example stress_par [ITERATIONS]
//! ```

use lwsnap_core::ParallelEngine;
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(300);
    let program = assemble_source(&nqueens_source(6, true, true)).unwrap();
    for i in 0..iters {
        for workers in [2usize, 3, 8] {
            let r = ParallelEngine::new(workers).run(Interp::new, program.boot().unwrap());
            assert_eq!(r.stats.solutions, 4, "iter {i} workers {workers}");
        }
        if i % 50 == 0 {
            eprintln!("iter {i} ok");
        }
    }
    eprintln!("all ok");
}
