//! Parallel symbolic execution: S2E-style multi-path analysis on the
//! lock-free work-stealing engine.
//!
//! Explores a branch-tree program (`2^DEPTH` feasible paths, each
//! requiring a SAT feasibility check) and a password cracker, first
//! sequentially, then with [`lwsnap_symex::par_explore`] forking
//! path-constraint snapshots across N workers. Per-path verdicts — the
//! synthesised test inputs — are merged canonically and must match the
//! sequential run exactly.
//!
//! ```sh
//! cargo run --release --example par_symex [DEPTH] [WORKERS]
//! ```

use lwsnap_core::{strategy::Dfs, Engine};
use lwsnap_symex::{
    par_explore,
    programs::{branch_tree_source, password_source},
    PathEnd, SymExec,
};
use lwsnap_vm::assemble_source;

fn canonical(mut cases: Vec<lwsnap_symex::TestCase>) -> Vec<lwsnap_symex::TestCase> {
    lwsnap_symex::TestCase::canonical_sort(&mut cases);
    cases
}

fn main() {
    let depth: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });

    // ---- branch tree: 2^depth feasible paths --------------------------
    let src = branch_tree_source(depth);
    let prog = assemble_source(&src).expect("branch tree assembles");

    let start = std::time::Instant::now();
    let mut exec = SymExec::new();
    Engine::new(Dfs::new()).run(&mut exec, prog.boot().unwrap());
    let seq_time = start.elapsed();
    let seq_cases = canonical(exec.cases);

    let start = std::time::Instant::now();
    let report = par_explore(prog.boot().unwrap(), workers);
    let par_time = start.elapsed();

    assert_eq!(
        report.cases, seq_cases,
        "parallel verdicts must match sequential"
    );
    println!(
        "branch_tree({depth}): {} paths, {} solver checks, {} forks",
        report.cases.len(),
        report.stats.solver_checks,
        report.stats.forks
    );
    println!(
        "  sequential {seq_time:?} | {workers} workers {par_time:?} | speedup {:.2}x | verdicts identical: yes",
        seq_time.as_secs_f64() / par_time.as_secs_f64()
    );
    println!(
        "  shared pool: {} interned nodes | snapshots: {} created, peak {} live",
        report.pool.len(),
        report.run.stats.snapshots_created,
        report.run.stats.snapshots_peak
    );

    // ---- password cracker: one accepting path among many ---------------
    let password = b"s3cr3t";
    let prog = assemble_source(&password_source(password)).expect("password assembles");
    let start = std::time::Instant::now();
    let report = par_explore(prog.boot().unwrap(), workers);
    let crack_time = start.elapsed();
    let accepted: Vec<_> = report
        .cases
        .iter()
        .filter(|c| c.end == PathEnd::Exit(42))
        .collect();
    assert_eq!(accepted.len(), 1, "exactly one accepting path");
    assert_eq!(accepted[0].inputs, password);
    println!(
        "password: cracked {:?} in {crack_time:?} on {workers} workers ({} paths, {} pruned)",
        String::from_utf8_lossy(&accepted[0].inputs),
        report.cases.len(),
        report.stats.infeasible_pruned
    );
}
