//! S2E-style bug finding with snapshot-forked symbolic execution (§2).
//!
//! Marks a guest buffer symbolic, explores every feasible path (each
//! symbolic branch = one `sys_guess(2)` fork in the snapshot tree), and
//! prints a concrete crashing input for every bug plus a test input for
//! every clean path.
//!
//! ```sh
//! cargo run --release --example symex_bugfinder
//! ```

use lwsnap_core::{strategy::Dfs, Engine};
use lwsnap_symex::{PathEnd, SymExec};
use lwsnap_vm::assemble_source;

/// A small "parser" with two buried bugs: a division that can be driven
/// to zero and a checksum branch hiding an illegal memory access.
const TARGET: &str = r#"
.text
_start:
    mov  rdi, input
    mov  rsi, 4
    mov  rax, 1100      ; make_symbolic(input, 4)
    syscall
    mov  r12, input

    ; header check: in[0] must be 'L'
    ld1  rbx, [r12]
    cmp  rbx, 76
    jnz  reject

    ; version: in[1] in {1, 2}
    ld1  rbx, [r12+1]
    cmp  rbx, 1
    jz   versioned
    cmp  rbx, 2
    jnz  reject
versioned:

    ; BUG 1: when in[2] == 10 a divisor of zero is used.
    ld1  rbx, [r12+2]
    cmp  rbx, 10
    jnz  no_div_bug
    mov  rcx, 1000
    mov  rbx, 0
    udiv rcx, rbx
no_div_bug:

    ; BUG 2: if in[3] > 250, read through a wild pointer.
    ld1  rbx, [r12+3]
    cmp  rbx, 250
    jbe  accept
    mov  rbx, 0xdead0000
    ld8  rcx, [rbx]

accept:
    mov  rdi, 0
    mov  rax, 60
    syscall
reject:
    mov  rdi, 1
    mov  rax, 60
    syscall
.data
input: .space 4
"#;

fn main() {
    let program = assemble_source(TARGET).expect("target assembles");
    let mut exec = SymExec::new();
    let mut engine = Engine::new(Dfs::new());
    let start = std::time::Instant::now();
    let result = engine.run(&mut exec, program.boot().expect("boots"));
    let elapsed = start.elapsed();

    println!("explored the target binary symbolically in {elapsed:?}");
    println!(
        "paths: {} | forks: {} | solver checks: {} | infeasible pruned: {}\n",
        exec.cases.len(),
        exec.stats.forks,
        exec.stats.solver_checks,
        exec.stats.infeasible_pruned
    );

    let mut bugs = 0;
    for case in &exec.cases {
        match &case.end {
            PathEnd::Fault(msg) => {
                bugs += 1;
                println!(
                    "BUG   input={:<20} {:>2} constraints  ({msg})",
                    format!("{:?}", case.inputs),
                    case.constraints
                );
            }
            PathEnd::Exit(code) => {
                println!(
                    "exit({code}) input={:<20} {:>2} constraints",
                    format!("{:?}", case.inputs),
                    case.constraints
                );
            }
        }
    }
    println!(
        "\n{bugs} crashing inputs synthesised (2 distinct bugs x 2 accepted versions: \
         div-by-zero when in[2]==10, wild read when in[3]>250)"
    );
    println!(
        "engine: {} snapshots, {} restores — every fork was a lightweight snapshot",
        result.stats.snapshots_created, result.stats.restores
    );
}
