//! Experiment E5 demo — the multi-path incremental solver service (§3.2).
//!
//! A client explores a *tree* of related SAT problems: a base formula
//! `p`, then divergent increments layered on shared prefixes. The service
//! answers each query from the parent's solved snapshot (keeping its
//! learnt clauses); the baseline re-solves every node from scratch.
//!
//! ```sh
//! cargo run --release --example incremental_service [vars]
//! ```

use std::time::Instant;

use lwsnap_solver::{IncrementalFamily, SolveResult, SolverService};

fn main() {
    let vars: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);
    let fam = IncrementalFamily::new(vars, 8, 0xfeed);
    let depth = 5u64;
    let branching = 2u64;

    println!("query tree: depth {depth}, branching {branching}, base = 3-SAT over {vars} vars\n");

    // --- incremental service: fork each child from its parent snapshot.
    let start = Instant::now();
    let mut service = SolverService::new();
    let base = service
        .solve(service.root(), &fam.base().clauses)
        .expect("root alive");
    println!(
        "base problem p: {:?} ({} conflicts)",
        base.result, base.conflicts
    );
    let mut frontier = vec![(base.problem, 0u64, vec![])];
    let mut inc_conflicts = base.conflicts;
    let mut queries = 1u64;
    while let Some((parent, level, path)) = frontier.pop() {
        if level == depth {
            continue;
        }
        for b in 0..branching {
            // Each branch uses a distinct increment seeded by its path.
            let idx = level * branching + b;
            let reply = service
                .solve(parent, &fam.increment(idx))
                .expect("parent alive");
            inc_conflicts += reply.conflicts;
            queries += 1;
            let mut child_path = path.clone();
            child_path.push(idx);
            if reply.result == SolveResult::Sat {
                frontier.push((reply.problem, level + 1, child_path));
            }
        }
    }
    let inc_time = start.elapsed();
    println!(
        "incremental service: {queries} queries, {inc_conflicts} total conflicts, {inc_time:?}"
    );

    // --- scratch baseline: re-solve the full stack at every node.
    let start = Instant::now();
    let mut scratch_conflicts = 0u64;
    let mut scratch_queries = 0u64;
    let mut frontier = vec![(0u64, Vec::<u64>::new())];
    while let Some((level, path)) = frontier.pop() {
        let mut clauses = fam.base().clauses;
        for &idx in &path {
            clauses.extend(fam.increment(idx));
        }
        let (result, stats) = SolverService::solve_scratch(&clauses);
        scratch_conflicts += stats.conflicts;
        scratch_queries += 1;
        if level < depth && result == SolveResult::Sat {
            for b in 0..branching {
                let mut child = path.clone();
                child.push(level * branching + b);
                frontier.push((level + 1, child));
            }
        }
    }
    let scratch_time = start.elapsed();
    println!(
        "from-scratch baseline: {scratch_queries} queries, {scratch_conflicts} total conflicts, {scratch_time:?}"
    );

    println!(
        "\nspeedup from snapshot reuse: {:.2}x time, {:.2}x conflicts",
        scratch_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9),
        scratch_conflicts as f64 / inc_conflicts.max(1) as f64
    );
    println!("(paper §2: an incremental solver solves p then p∧q faster than from scratch)");
}
