//! Experiment E1 — the paper's §5 performance ranking, live.
//!
//! "When applied to toy applications like n-queens, our prototype
//! performs (as expected) substantially worse than a hand-coded
//! implementation, but better than a Prolog implementation running on
//! XSB."
//!
//! Runs n-queens four ways and prints a ranking table:
//!   1. hand-coded bitmask DFS (native Rust),
//!   2. system-level backtracking (SVM-64 guest + snapshot engine),
//!   3. re-execution backtracking (the no-snapshot oracle),
//!   4. Prolog (trail-based interpreter).
//!
//! ```sh
//! cargo run --release --example nqueens_showdown [N]
//! ```

use std::time::{Duration, Instant};

use lwsnap_core::{replay_dfs, strategy::Dfs, Engine, Outcome};
use lwsnap_prolog::{Machine, NQUEENS_PROGRAM};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

/// Hand-coded n-queens: bitmask DFS, undo by recursion. The paper's
/// "best implemented by hand-coding the backtracking logic on a stack".
fn handcoded(n: u32) -> u64 {
    fn go(n: u32, cols: u32, ld: u32, rd: u32) -> u64 {
        if cols == (1 << n) - 1 {
            return 1;
        }
        let mut free = !(cols | ld | rd) & ((1 << n) - 1);
        let mut count = 0;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free -= bit;
            count += go(n, cols | bit, (ld | bit) << 1, (rd | bit) >> 1);
        }
        count
    }
    go(n, 0, 0, 0)
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    let (hand_count, hand_time) = timed(|| handcoded(n as u32));

    let program = assemble_source(&nqueens_source(n, false, true)).expect("assembles");
    let (snap_result, snap_time) = timed(|| {
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        engine.run(&mut interp, program.boot().expect("boots"))
    });

    let (replay_result, replay_time) = timed(|| {
        replay_dfs(
            |ctx| {
                let size = n as usize;
                let mut col = vec![false; size];
                let mut d1 = vec![false; 2 * size];
                let mut d2 = vec![false; 2 * size];
                for c in 0..size {
                    let r = ctx.guess(n) as usize;
                    if col[r] || d1[r + c] || d2[size + r - c] {
                        return Outcome::Failed;
                    }
                    col[r] = true;
                    d1[r + c] = true;
                    d2[size + r - c] = true;
                }
                Outcome::Solution
            },
            None,
        )
    });

    let (prolog_count, prolog_time) = timed(|| {
        let mut m = Machine::new();
        m.consult(NQUEENS_PROGRAM).expect("program loads");
        m.count_solutions(&format!("queens({n}, Qs)"))
            .expect("query runs")
    });

    assert_eq!(hand_count, snap_result.stats.solutions);
    assert_eq!(hand_count, replay_result.stats.solutions);
    assert_eq!(hand_count, prolog_count);

    println!("n-queens ranking, N = {n} ({hand_count} solutions), paper §5 claim:");
    println!("  hand-coded  <  system-level backtracking  <  Prolog\n");
    println!("{:<28} {:>14} {:>12}", "implementation", "time", "vs hand");
    let rel = |t: Duration| t.as_secs_f64() / hand_time.as_secs_f64().max(1e-9);
    println!(
        "{:<28} {:>14?} {:>11.1}x",
        "hand-coded bitmask DFS", hand_time, 1.0
    );
    println!(
        "{:<28} {:>14?} {:>11.1}x",
        "snapshot engine (SVM-64)",
        snap_time,
        rel(snap_time)
    );
    println!(
        "{:<28} {:>14?} {:>11.1}x",
        "re-execution oracle",
        replay_time,
        rel(replay_time)
    );
    println!(
        "{:<28} {:>14?} {:>11.1}x",
        "Prolog interpreter",
        prolog_time,
        rel(prolog_time)
    );
    println!(
        "\nsnapshot engine internals: {} snapshots, {} restores, {} inline continues",
        snap_result.stats.snapshots_created,
        snap_result.stats.restores,
        snap_result.stats.inline_continues
    );
    let ok = snap_time < prolog_time;
    println!(
        "\npaper ranking reproduced: hand < snapshots {} prolog",
        if ok {
            "<"
        } else {
            ">= (NOT reproduced on this run)"
        }
    );
}
