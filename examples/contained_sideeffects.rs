//! Interposition demo (§3.1/§5): file side effects stay inside a branch.
//!
//! A guest program explores three extensions; each opens the same file,
//! scribbles its own content, and prints what it reads back. Because
//! every extension runs against a CoW file view captured in the
//! snapshot, the branches never see each other's writes — no cleanup
//! code, no temp files, no locking.
//!
//! ```sh
//! cargo run --release --example contained_sideeffects
//! ```

use lwsnap_core::{strategy::Dfs, Engine};
use lwsnap_fs::{FsView, Volume};
use lwsnap_vm::{assemble_source, Interp};

const GUEST: &str = r#"
.text
_start:
    ; which = sys_guess(3)
    mov  rdi, 3
    mov  rax, 1000
    syscall
    mov  r15, rax          ; branch number

    ; fd = open("/scratch.txt", O_RDWR)
    mov  rdi, path
    mov  rsi, 2            ; O_RDWR
    mov  rax, 2
    syscall
    mov  r14, rax          ; fd

    ; overwrite byte 7 of the shared file with '0'+branch
    mov  rbx, r15
    add  rbx, 48
    mov  rcx, scratch
    st1  [rcx], rbx
    mov  rdi, r14
    mov  rsi, 0
    mov  rdx, 0            ; lseek(fd, 7, SEEK_SET)
    mov  rsi, 7
    mov  rax, 8
    syscall
    mov  rdi, r14
    mov  rsi, scratch
    mov  rdx, 1
    mov  rax, 1            ; write(fd, scratch, 1)
    syscall

    ; read the whole file back and print it
    mov  rdi, r14
    mov  rsi, 0
    mov  rdx, 0
    mov  rax, 8            ; lseek(fd, 0, SEEK_SET)
    syscall
    mov  rdi, r14
    mov  rsi, buf
    mov  rdx, 9
    mov  rax, 0            ; read(fd, buf, 9)
    syscall
    mov  rdi, 1
    mov  rsi, buf
    mov  rdx, 9
    mov  rax, 1            ; write(1, buf, 9) -> console passthrough
    syscall
    mov  rdi, 1
    mov  rsi, nlbuf
    mov  rdx, 1
    mov  rax, 1
    syscall

    mov  rax, 1001         ; backtrack: this branch's file state vanishes
    syscall

.data
path:    .asciz "/scratch.txt"
scratch: .space 1
buf:     .space 9
nlbuf:   .asciz "\n"
"#;

fn main() {
    let program = assemble_source(GUEST).expect("guest assembles");

    // Pre-populate the volume the snapshot will capture.
    let mut volume = Volume::new();
    volume.write_file("/scratch.txt", b"branch-?\n").unwrap();
    let fs = FsView::new(volume);

    let root = program.boot_with_fs(fs).expect("boots");
    let mut engine = Engine::new(Dfs::new());
    let result = engine.run(&mut Interp::new(), root);

    println!("each branch saw its own private copy of /scratch.txt:\n");
    print!("{}", result.transcript_str());
    println!(
        "\n3 branches, {} snapshots, {} failures — and zero cross-branch interference.",
        result.stats.snapshots_created, result.stats.failures
    );
    println!("(every write above hit the SAME offset of the SAME file)");
}
