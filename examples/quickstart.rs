//! Quickstart: run the paper's Figure 1 verbatim.
//!
//! Assembles the n-queens guest program (one `sys_guess` per column,
//! `sys_guess_fail` on conflict — and **zero undo code**), boots it into
//! a snapshottable address space, and lets the DFS engine enumerate all
//! answers by restoring lightweight snapshots.
//!
//! ```sh
//! cargo run --release --example quickstart [N]
//! ```

use lwsnap_core::{strategy::Dfs, Engine};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);

    // Figure 1, as an SVM-64 program (printing + emitting solutions).
    let source = nqueens_source(n, true, true);
    let program = assemble_source(&source).expect("n-queens assembles");
    println!(
        "assembled {} instructions; entry {:#x}",
        program.instr_count(),
        program.entry
    );

    let root = program.boot().expect("program boots");
    let mut engine = Engine::new(Dfs::new());
    let mut interp = Interp::new();
    let start = std::time::Instant::now();
    let result = engine.run(&mut interp, root);
    let elapsed = start.elapsed();

    print!("{}", result.transcript_str());
    println!("--------------------------------------------------");
    println!(
        "{n}-queens: {} solutions in {elapsed:?}",
        result.stats.solutions
    );
    println!(
        "snapshots: {} created (peak {} live), {} restores, {} inline fast-path continues",
        result.stats.snapshots_created,
        result.stats.snapshots_peak,
        result.stats.restores,
        result.stats.inline_continues,
    );
    println!(
        "extension steps: {}; failed paths: {}; guest instructions: {}",
        result.stats.extensions_evaluated, result.stats.failures, interp.total_steps,
    );
}
