//! Closed-loop load generator for the sharded solver service.
//!
//! Drives M concurrent client sessions over a shared problem tree and
//! reports throughput, p50/p99 latency and the snapshot-economy
//! counters, for seven service flavours — the last six all running the
//! SAME session loop against the `SolverBackend` trait:
//!
//! 1. the single-threaded `SolverService` baseline;
//! 2. the sharded service with a worker pool (unbounded memory);
//! 3. the same, with resident snapshots capped at 25% of the problem
//!    tree — exercising LRU eviction and constraint-path re-derivation;
//! 4. a remote `lwsnapd` over loopback TCP, one connection per
//!    session driven **serially** (submit, wait, repeat — a full
//!    round trip per query; tagged frames, same as phase 5, so the
//!    comparison isolates the wire discipline);
//! 5. the same daemon, all sessions multiplexed on ONE **pipelined**
//!    connection (out-of-order completions) — the epoll front end's
//!    reason to exist. The legacy v1 blocking `TcpClient` path is
//!    exercised by `service_pipeline` (bench) and the TCP
//!    integration suite rather than here;
//! 6. a **3-node in-process cluster** behind the consistent-hash ring
//!    (`ClusterBackend` over one pipelined connection per node) —
//!    sessions partitioned across nodes, per-node hit/rederive/evict
//!    counters reported individually instead of silently summed;
//! 7. the same cluster under **chaos**: halfway through the run every
//!    session pauses, one node is KILLED (the one homing session 0)
//!    and a fresh node joins, then the sessions resume — the killed
//!    node's sessions fail over onto their ring-successor replicas by
//!    path-log replay, and the verdict/witness streams must still be
//!    bit-identical to the sequential baseline;
//! 8. the seeded **fault-injection harness**: a fresh 3-node cluster
//!    with a replica-store byte budget and client heartbeats, running a
//!    fixed compaction-heavy workload (many small incremental steps, so
//!    the byte bound sits in a wide deterministic band) under a
//!    [`ChaosPlan`] (`--chaos-seed` × `--chaos-mode`) — replication
//!    frames are dropped/duplicated/delayed content-keyed on both
//!    planes, and in `kill` mode the seeded victim dies at the midpoint
//!    barrier with **no request in flight**, so the failover that
//!    follows can only come from the heartbeat detector. The phase
//!    asserts verdict bit-identity against its own sequential baseline,
//!    per-node `replica_bytes` ≤ the configured bound, and — under
//!    kill — `failovers > 0`, at least one heartbeat-triggered
//!    failover, and `compactions > 0`.
//!
//! Every SAT model returned in any phase is re-checked against the full
//! constraint path of its problem, and the SAT/UNSAT verdict streams of
//! all phases are compared step for step; any mismatch exits
//! non-zero. That is the "deterministically verifiable under
//! concurrency" property the paper's service sketch demands — now
//! across machine boundaries too.
//!
//! ```sh
//! cargo run --release --example service_loadgen -- \
//!     [--sessions M] [--queries Q] [--vars V] [--shards S] [--workers W] \
//!     [--reactors R] [--connections C] [--nodes N] [--budget BYTES] [--smoke] \
//!     [--chaos-seed SEED] [--chaos-mode kill,drop,duplicate,delay] \
//!     [--replica-budget BYTES] [--metrics-addr HOST:PORT] [--trace-out PATH]
//! ```
//!
//! `--reactors` fans every in-process daemon (the single server of
//! phases 4–5 and every cluster node) across R `SO_REUSEPORT` epoll
//! reactors; `--connections` sizes the fan-out sub-phase — C pipelined
//! connections sharing the session load — after which the single
//! server's per-reactor accept/completion/queue-depth/copy counters
//! are printed, the observable proof that the kernel actually sharded
//! the connection load.
//!
//! `--budget` bounds resident snapshot bytes per shard in every remote
//! phase (TCP, cluster, chaos), so the daemons churn through byte-budget
//! eviction and constraint-path replay while the verdict streams are
//! cross-checked — eviction under chaos, not just under calm.
//!
//! Observability hooks: `--metrics-addr` serves the plaintext scrape
//! for the run's lifetime and self-scrapes it at the end, asserting the
//! solve histogram actually counted (the CI smoke leg); `--trace-out`
//! writes every event drained from the cluster phases as
//! chrome://tracing JSON. Under `kill` mode the phase-8 merged trace is
//! additionally reduced to a printed **failover timeline** — last
//! heartbeat pong, missed probes, the death verdict, replica
//! promotions, reroutes — and the phase asserts the timeline is
//! reconstructable (a death verdict and a promotion are present).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lwsnap_bench::service_workload::{RunOutcome, Workload};
use lwsnap_service::{
    ChaosPlan, Cluster, PipelinedClient, Server, ServiceConfig, SolverBackend, TcpClient,
};
use lwsnap_trace::{export, Event, Kind};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn parse_str_flag<'a>(args: &'a [String], name: &str, default: &'a str) -> &'a str {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map_or(default, String::as_str)
}

/// Prints the phase-8 failover story read back out of one merged trace
/// stream: the victim's last acknowledged probe, the missed-probe
/// build-up, the death verdict, every replica promotion, and the first
/// rerouted request. Returns `(saw_death, promotions)` so the caller
/// can assert the timeline was actually reconstructable.
fn print_failover_timeline(events: &[Event], victim: u16) -> (bool, usize) {
    let v = victim as u64;
    let ms = |from: u64, to: u64| (to.saturating_sub(from)) as f64 / 1e6;
    let first_miss = events
        .iter()
        .find(|e| e.kind == Kind::HbMiss && e.a == v)
        .map(|e| e.ts_ns);
    let last_pong = events
        .iter()
        .filter(|e| e.kind == Kind::HbPong && e.a == v)
        .filter(|e| first_miss.is_none_or(|t| e.ts_ns < t))
        .map(|e| e.ts_ns)
        .next_back();
    let t0 = last_pong
        .or(first_miss)
        .or_else(|| events.first().map(|e| e.ts_ns))
        .unwrap_or(0);
    println!(
        "    failover timeline (victim node {victim}, {} events merged):",
        events.len()
    );
    if let Some(t) = last_pong {
        println!(
            "      +{:>8.2}ms last heartbeat pong from node {victim}",
            ms(t0, t)
        );
    }
    let misses = events
        .iter()
        .filter(|e| e.kind == Kind::HbMiss && e.a == v)
        .count();
    if let Some(t) = first_miss {
        println!(
            "      +{:>8.2}ms first missed probe ({misses} misses total)",
            ms(t0, t)
        );
    }
    let mut saw_death = false;
    for e in events {
        match e.kind {
            Kind::NodeDead if e.a == v => {
                saw_death = true;
                println!(
                    "      +{:>8.2}ms peers declared node {victim} dead ({} sessions to promote)",
                    ms(t0, e.ts_ns),
                    e.b,
                );
            }
            Kind::Failover if e.a == v => {
                saw_death = true;
                println!(
                    "      +{:>8.2}ms client buried node {victim} (epoch {})",
                    ms(t0, e.ts_ns),
                    e.b,
                );
            }
            _ => {}
        }
    }
    let promotions: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == Kind::ReplPromote)
        .collect();
    for e in &promotions {
        println!(
            "      +{:>8.2}ms replica promoted session {:#x} ({} edges replayed)",
            ms(t0, e.ts_ns),
            e.a,
            e.b,
        );
    }
    if let Some(e) = events.iter().find(|e| e.kind == Kind::Rerouted && e.a == v) {
        println!(
            "      +{:>8.2}ms first request rerouted {victim} -> node {}",
            ms(t0, e.ts_ns),
            e.b,
        );
    }
    (saw_death, promotions.len())
}

fn report(label: &str, outcome: &RunOutcome) {
    println!(
        "  {label:<28} {:>8.0} q/s   p50 {:>9.2?}   p99 {:>9.2?}   wall {:>8.2?}   \
         {} models verified",
        outcome.throughput(),
        outcome.latency_quantile(0.5),
        outcome.latency_quantile(0.99),
        outcome.wall,
        outcome.verified_models,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let sessions = parse_flag(&args, "--sessions", 8);
    let queries = parse_flag(&args, "--queries", if smoke { 6 } else { 24 });
    let vars = parse_flag(&args, "--vars", if smoke { 40 } else { 70 });
    let shards = parse_flag(&args, "--shards", 8);
    let workers = parse_flag(
        &args,
        "--workers",
        std::thread::available_parallelism().map_or(4, |n| n.get()),
    );
    let reactors = parse_flag(
        &args,
        "--reactors",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let connections = parse_flag(&args, "--connections", if smoke { 16 } else { 64 });
    let nodes = parse_flag(&args, "--nodes", 3);
    let budget: Option<usize> = args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let chaos_seed = parse_flag(&args, "--chaos-seed", 0xc4a0) as u64;
    let chaos_mode = parse_str_flag(&args, "--chaos-mode", "kill,drop,duplicate");
    // Default sits in the measured deterministic band for the fixed
    // harness workload: above the worst node's fully-compacted floor
    // (~72 KiB under a midpoint kill) and below its uncompacted peak
    // (~87 KiB), so compaction MUST both trigger and suffice.
    let replica_budget = parse_flag(&args, "--replica-budget", 80 * 1024);
    let metrics_addr = args
        .iter()
        .position(|a| a == "--metrics-addr")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    assert!(sessions >= 1 && queries >= 1 && nodes >= 1 && reactors >= 1 && connections >= 1);
    let scrape_addr = metrics_addr.map(|addr| {
        let bound = export::serve(&addr).expect("bind metrics exporter");
        println!("metrics exporter on http://{bound}/metrics\n");
        bound
    });
    // Every cluster phase drains its nodes' event rings into this one
    // stream; `--trace-out` writes it as chrome://tracing JSON at exit.
    let mut trace_events: Vec<Event> = Vec::new();
    // All remote phases share one daemon configuration; the byte budget
    // (when set) makes them run under continuous snapshot eviction.
    let remote_config = || {
        let mut config = ServiceConfig::new(shards);
        config.snapshot_budget_bytes = budget;
        config
    };

    println!(
        "workload: {sessions} sessions × {queries} queries, 3-SAT base over {vars} vars, \
         {shards} shards, {workers} workers, {reactors} reactor(s){}\n",
        budget.map_or(String::new(), |b| format!(", {b}-byte budget/shard")),
    );
    let workload = Workload::build(sessions, queries, vars, 0x10ad);

    // Phase 1: the single-threaded scaling baseline.
    let sequential = lwsnap_bench::service_workload::run_sequential(&workload);
    report("sequential SolverService", &sequential);

    // Phase 2: sharded + worker pool, no memory bound.
    let (sharded, service, worker_stats) =
        lwsnap_bench::service_workload::run_sharded(&workload, shards, workers, None);
    report("sharded (unbounded)", &sharded);
    let stats = service.stats();
    let total = stats.total();
    let busiest_shard_live = stats
        .shards
        .iter()
        .map(|s| s.live_problems)
        .max()
        .unwrap_or(1);
    println!(
        "    {} live problems over {} shards (busiest {}), hit rate {:.1}%, jobs/worker {:?}",
        total.live_problems,
        stats.shards.len(),
        busiest_shard_live,
        stats.hit_rate().unwrap_or(1.0) * 100.0,
        worker_stats.iter().map(|w| w.jobs).collect::<Vec<_>>(),
    );

    // Phase 3: cap resident snapshots at 25% of the busiest shard's
    // tree, forcing eviction + replay on the same workload.
    let capacity = (busiest_shard_live / 4).max(1);
    let (evicting, evicting_service, _) =
        lwsnap_bench::service_workload::run_sharded(&workload, shards, workers, Some(capacity));
    report(&format!("sharded (cap {capacity}/shard)"), &evicting);
    let etotal = evicting_service.stats().total();
    println!(
        "    {} evictions, {} rederivations ({} clauses, {} conflicts replayed), \
         hit rate {:.1}%",
        etotal.evictions,
        etotal.rederivations,
        etotal.replayed_clauses,
        etotal.rederive_conflicts,
        evicting_service.stats().hit_rate().unwrap_or(1.0) * 100.0,
    );

    // Phases 4 & 5: the same closed loop over loopback TCP against the
    // epoll front end — blocking one-connection-per-session vs all
    // sessions pipelined on one connection.
    let server =
        Server::start_with("127.0.0.1:0", remote_config(), workers, reactors).expect("bind");
    let addr = server.local_addr();

    let blocking = {
        let clients: Vec<PipelinedClient> = (0..sessions)
            .map(|_| PipelinedClient::connect(addr).expect("connect"))
            .collect();
        // Each session gets a dedicated connection driven one call at
        // a time (submit + wait) — the per-query-round-trip baseline.
        lwsnap_bench::service_workload::run_backend(&workload, |i, plan| {
            let backend: &dyn SolverBackend = &clients[i];
            let root = backend.session_root(plan.session).expect("transport");
            let base = backend
                .solve(root, workload.base.clone())
                .expect("transport")
                .expect("root is live")
                .problem;
            (backend, base)
        })
    };
    report("TCP serial (conn/session)", &blocking);

    let pipelined = {
        let shared = PipelinedClient::connect(addr).expect("connect");
        lwsnap_bench::service_workload::run_remote(&workload, &shared)
    };
    report("TCP pipelined (one conn)", &pipelined);
    println!(
        "    pipelining gain over serial TCP: {:.2}×",
        pipelined.throughput() / blocking.throughput().max(1e-9),
    );

    // Phase 5b: the many-connection fan-out — C pipelined connections
    // (sessions round-robined across them when C < M, extra idle
    // connections when C > M) so the kernel's SO_REUSEPORT sharding
    // has a real load to spread over the reactors.
    let fanout = {
        let clients: Vec<PipelinedClient> = (0..connections)
            .map(|_| PipelinedClient::connect(addr).expect("connect"))
            .collect();
        lwsnap_bench::service_workload::run_backend(&workload, |i, plan| {
            let backend: &dyn SolverBackend = &clients[i % clients.len()];
            let root = backend.session_root(plan.session).expect("transport");
            let base = backend
                .solve(root, workload.base.clone())
                .expect("transport")
                .expect("root is live")
                .problem;
            (backend, base)
        })
    };
    report(&format!("TCP fan-out ({connections} conns)"), &fanout);
    // The accept/queue-depth distribution the reactor rework is about:
    // nonzero accepts on more than one reactor means the kernel really
    // sharded the connections; rx-copied bytes staying ~0 means the
    // pooled parse really was in place.
    for (i, r) in server.reactor_stats().iter().enumerate() {
        println!(
            "    reactor {i}: {} conns accepted, {} completions (queue peak {}), \
             {} rx bytes copied, {} pool blocks recycled ({} leased, {} free)",
            r.accepted,
            r.completions,
            r.queue_peak,
            r.rx_copy_bytes,
            r.pool_recycled,
            r.pool_outstanding,
            r.pool_free,
        );
    }
    TcpClient::connect(addr)
        .and_then(|mut c| c.shutdown_server())
        .expect("shutdown");
    server.wait();

    // Phase 6: the same closed loop over an in-process CLUSTER — one
    // lwsnapd-equivalent node per node id, sessions partitioned by the
    // consistent-hash ring, one pipelined connection per node.
    let cluster = Cluster::start_local_with(nodes, remote_config(), workers, reactors)
        .expect("start cluster");
    let cluster_backend = cluster.connect().expect("connect cluster");
    let clustered = lwsnap_bench::service_workload::run_remote(&workload, &cluster_backend);
    report(&format!("cluster ({nodes} nodes, 1 ring)"), &clustered);
    // Per-node accounting: the node dimension is kept, not summed away.
    let fleet = cluster_backend.node_stats().expect("node stats");
    for (node, s) in &fleet.nodes {
        println!(
            "    node {node}: {} queries, {} hits, {} rederivations, {} evictions, \
             {} live problems over {} shards",
            s.queries, s.snapshot_hits, s.rederivations, s.evictions, s.live_problems, s.shards,
        );
        println!(
            "    node {node} mem: {} CoW page copies, {} zero fills, {} bytes written",
            s.cow_page_copies, s.zero_fills, s.bytes_written,
        );
    }
    trace_events.extend(cluster_backend.fleet_trace().expect("trace dump"));
    for (node, result) in cluster_backend.shutdown() {
        result.unwrap_or_else(|e| panic!("node {node} failed to drain: {e}"));
    }
    cluster.shutdown();

    // Phase 7: the same cluster workload under CHAOS — at the halfway
    // barrier (no request in flight), kill the node homing session 0
    // and join a brand-new node; the resumed sessions discover the
    // change on their next solves and fail over transparently.
    let mut chaos_cluster = Cluster::start_local_with(nodes, remote_config(), workers, reactors)
        .expect("start cluster");
    let chaos_backend = chaos_cluster.connect().expect("connect cluster");
    let victim = chaos_backend
        .ring()
        .node_for(workload.sessions[0].session)
        .expect("ring places session 0");
    let chaos = {
        let cluster = &mut chaos_cluster;
        let backend = &chaos_backend;
        lwsnap_bench::service_workload::run_remote_with_midpoint(
            &workload,
            &chaos_backend,
            queries / 2,
            move || {
                cluster.kill_node(victim);
                let (id, addr) = cluster
                    .add_node(remote_config(), workers)
                    .expect("join node");
                backend.add_node(id, addr).expect("connect joined node");
            },
        )
    };
    report(&format!("cluster chaos (kill {victim}, +1)"), &chaos);
    let fleet = chaos_backend.node_stats().expect("node stats");
    let chaos_total = fleet.total();
    for (node, s) in &fleet.nodes {
        println!(
            "    node {node}: {} queries, {} failovers, {} promotions, {} replica bytes",
            s.queries, s.failovers, s.replica_promotions, s.replica_bytes,
        );
    }
    assert!(
        chaos_total.failovers > 0,
        "chaos phase must actually exercise failover (victim {victim} homed no session?)"
    );
    // Drain phase 7's events so the phase-8 timeline below starts from
    // a clean stream (one kill per reconstruction).
    trace_events.extend(chaos_backend.fleet_trace().expect("trace dump"));
    for (node, result) in chaos_backend.shutdown() {
        result.unwrap_or_else(|e| panic!("node {node} failed to drain: {e}"));
    }
    chaos_cluster.shutdown();

    // Phase 8: the seeded fault-injection harness. A fresh 3-node
    // cluster runs a FIXED workload shape (many small incremental
    // steps over a small base, so path logs are compaction-heavy and
    // the replica byte bound sits in a wide deterministic band) with a
    // replica-store byte budget and the chaos plan derived from
    // --chaos-seed × --chaos-mode: replication-plane frames are
    // dropped / duplicated / delayed content-keyed on BOTH fan-out
    // planes, and in `kill` mode the seeded victim dies at the midpoint
    // barrier while every session is parked — no request is in flight,
    // so the failover that rescues its sessions can only have been
    // triggered by the heartbeat detector, never by a client tripping
    // over the corpse. Verdicts and witnesses are checked against this
    // workload's own in-process sequential baseline.
    let plan = ChaosPlan::parse(chaos_seed, chaos_mode).unwrap_or_else(|| {
        eprintln!("unknown --chaos-mode in {chaos_mode:?} (kill, drop, duplicate, delay)");
        std::process::exit(2);
    });
    let harness_workload = Workload::build(8, 48, 24, 0x5eed);
    let harness_baseline = lwsnap_bench::service_workload::run_sequential(&harness_workload);
    let harness_config = || {
        let mut config = remote_config();
        config.replica_budget_bytes = Some(replica_budget);
        config
    };
    let mut harness_cluster =
        Cluster::start_local_with(3, harness_config(), workers, reactors).expect("start");
    let harness_backend = harness_cluster.connect().expect("connect cluster");
    let policy = plan.policy();
    if policy.is_active() {
        let policy = Arc::new(policy);
        harness_cluster.set_chaos(Some(policy.clone()));
        harness_backend.set_chaos(Some(policy));
    }
    harness_backend.start_heartbeat(Duration::from_millis(25), 3);
    let victim = harness_backend
        .ring()
        .node_for(harness_workload.sessions[plan.victim_index(8)].session)
        .expect("ring places the victim session");
    let harness = {
        let cluster = &mut harness_cluster;
        let backend = &harness_backend;
        lwsnap_bench::service_workload::run_remote_with_midpoint(
            &harness_workload,
            &harness_backend,
            24,
            move || {
                if !plan.kill {
                    return;
                }
                cluster.kill_node(victim);
                // Wait for the DETECTOR, not for a request error: the
                // sessions are all parked at the barrier, so the only
                // thing that can notice the kill is the heartbeat
                // thread. Resumed sessions then find the ring already
                // healed.
                let deadline = Instant::now() + Duration::from_secs(10);
                while backend.heartbeat_failovers() == 0 {
                    assert!(
                        Instant::now() < deadline,
                        "heartbeat never detected the killed node {victim}"
                    );
                    std::thread::sleep(Duration::from_millis(5));
                }
            },
        )
    };
    report(&format!("chaos harness (seed {chaos_seed:#x})"), &harness);
    let fleet = harness_backend.node_stats().expect("node stats");
    let harness_total = fleet.total();
    for (node, s) in &fleet.nodes {
        println!(
            "    node {node}: {} queries, {} failovers, {} promotions, {} replica bytes, \
             {} compactions, {} heartbeat misses",
            s.queries,
            s.failovers,
            s.replica_promotions,
            s.replica_bytes,
            s.compactions,
            s.heartbeat_misses,
        );
    }
    println!(
        "    plan [{}{}{}{}] · victim node {victim} · {} client hb misses, \
         {} hb-triggered failovers, {} failover retries",
        if plan.kill { "kill " } else { "" },
        if plan.drop { "drop " } else { "" },
        if plan.duplicate { "duplicate " } else { "" },
        if plan.delay { "delay" } else { "" },
        harness_backend.heartbeat_misses(),
        harness_backend.heartbeat_failovers(),
        harness_backend.failover_retries(),
    );
    // The harness assertions from the acceptance bar: bit-identical
    // verdicts against this workload's own in-process baseline, the
    // replica store never ending above its bound (and, under kill
    // pressure, compacting to get there), and the kill detected by
    // heartbeats — not by a client request error.
    let mut harness_mismatches = 0usize;
    for (s, base_session) in harness_baseline.verdicts.iter().enumerate() {
        if harness.verdicts[s] != *base_session {
            eprintln!("VERDICT MISMATCH: harness session {s} vs its sequential baseline");
            harness_mismatches += 1;
        }
    }
    assert!(
        harness_mismatches == 0,
        "{harness_mismatches} chaos-harness verdict mismatches — the service is WRONG"
    );
    for (node, s) in &fleet.nodes {
        assert!(
            s.replica_bytes <= replica_budget as u64,
            "node {node} replica store ({} bytes) exceeds the {replica_budget}-byte bound",
            s.replica_bytes,
        );
    }
    // Compaction pressure depends on HOW MUCH the kill redistributes
    // (a victim homing one session never pushes a survivor over the
    // bound), so `compactions > 0` is asserted for the calibrated
    // default configuration — the acceptance run, and what CI's kill
    // leg uses. Exotic seeds/bounds still get the invariant that
    // matters (`replica_bytes` ≤ bound, asserted above), just not a
    // guarantee that the bound was stressed.
    let calibrated = chaos_seed == 0xc4a0 && replica_budget == 80 * 1024;
    if plan.kill && calibrated {
        assert!(
            harness_total.compactions > 0,
            "the replica budget never forced a compaction — bound too loose for this workload"
        );
    }
    if plan.kill {
        assert!(
            harness_total.failovers > 0,
            "kill mode must exercise failover (victim {victim} homed no session?)"
        );
        assert!(
            harness_backend.heartbeat_failovers() >= 1,
            "the failover must be heartbeat-triggered, not client-request-triggered"
        );
    }
    // One merged trace export of the whole phase; under kill, the
    // failover timeline must be reconstructable from it alone.
    let harness_events = harness_backend.fleet_trace().expect("trace dump");
    if plan.kill {
        let (saw_death, promotions) = print_failover_timeline(&harness_events, victim);
        assert!(
            saw_death,
            "no death verdict for victim {victim} in the merged trace"
        );
        assert!(
            promotions > 0,
            "no replica promotion in the merged trace despite a kill"
        );
    }
    trace_events.extend(harness_events);
    for (node, result) in harness_backend.shutdown() {
        result.unwrap_or_else(|e| panic!("node {node} failed to drain: {e}"));
    }
    harness_cluster.shutdown();

    // Cross-phase verification: identical verdict streams everywhere.
    let mut mismatches = 0usize;
    for (s, seq_session) in sequential.verdicts.iter().enumerate() {
        for (phase, outcome) in [
            ("sharded", &sharded),
            ("evicting", &evicting),
            ("tcp-serial", &blocking),
            ("tcp-pipelined", &pipelined),
            ("tcp-fanout", &fanout),
            ("cluster", &clustered),
            ("cluster-chaos", &chaos),
        ] {
            if outcome.verdicts[s] != *seq_session {
                eprintln!("VERDICT MISMATCH: session {s}, {phase} vs sequential");
                mismatches += 1;
            }
        }
    }
    if mismatches > 0 {
        eprintln!("\n{mismatches} verdict mismatches — the service is WRONG");
        std::process::exit(1);
    }
    if let Some(path) = &trace_out {
        trace_events.sort_by_key(|e| (e.ts_ns, e.tid));
        std::fs::write(path, export::chrome_trace_json(&trace_events)).expect("write trace");
        println!(
            "wrote {} trace events to {path} (load at chrome://tracing or ui.perfetto.dev)",
            trace_events.len(),
        );
    }
    if let Some(bound) = scrape_addr {
        // The smoke contract CI relies on: the exporter answers, and
        // this process's solve histogram actually counted the run.
        let body = export::fetch(bound, "/metrics").expect("self-scrape");
        let solve_count: u64 = body
            .lines()
            .find_map(|l| l.strip_prefix("lwsnap_solve_ns_count "))
            .and_then(|v| v.trim().parse().ok())
            .expect("scrape lists lwsnap_solve_ns_count");
        assert!(
            solve_count > 0,
            "metrics scrape shows an empty solve histogram:\n{body}"
        );
        println!("metrics self-scrape OK: lwsnap_solve_ns_count = {solve_count}");
    }
    let speedup = evicting.throughput().max(sharded.throughput()) / sequential.throughput();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nall {} queries × 8 phases verified (+ the seeded chaos harness against \
         its own baseline): identical verdicts (failover included), \
         every model re-checked \
         against its constraint path ({:.2}× best sharded speedup over sequential on \
         {cores} core{})",
        workload.total_queries(),
        speedup,
        if cores == 1 {
            " — expect <1× here"
        } else {
            "s"
        },
    );
}
