//! Measures the event recorder's throughput cost — the ≤5% promise.
//!
//! Runs the shared closed-loop workload (the same one
//! `service_loadgen` and the `service_throughput` bench drive) on the
//! sharded worker-pool service, alternating the runtime tracing switch
//! off and on between iterations, and compares best-of-N throughput.
//! Alternating (instead of N-off-then-N-on) keeps thermal and cache
//! drift from masquerading as tracing overhead; best-of-N discards
//! scheduler noise. Metrics histograms stay live in BOTH flavours —
//! that is the contract the hot paths are written against — so the
//! number reported here is the cost of the ring recorder alone.
//!
//! ```sh
//! cargo run --release --example trace_overhead -- [--iters N] [--queries Q]
//! ```
//!
//! Prints both throughputs and the relative overhead. With the
//! `TRACE_GATE` environment variable set (CI's bench-gate leg), exits
//! non-zero if traced throughput regresses more than 5% — on a shared
//! runner, gate runs should use `--iters` high enough to quiet noise.

use lwsnap_bench::service_workload::{run_sharded, Workload};

fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let iters = parse_flag(&args, "--iters", 7).max(1);
    let queries = parse_flag(&args, "--queries", 12);
    let workload = Workload::build(8, queries, 50, 0xbe9c);

    // Warm up: fault in code paths, spin up allocator arenas, mint the
    // per-thread rings, before either timed flavour runs.
    run_sharded(&workload, 8, 4, None);

    let mut best_off = 0.0f64;
    let mut best_on = 0.0f64;
    for _ in 0..iters {
        lwsnap_trace::set_enabled(false);
        best_off = best_off.max(run_sharded(&workload, 8, 4, None).0.throughput());
        lwsnap_trace::set_enabled(true);
        best_on = best_on.max(run_sharded(&workload, 8, 4, None).0.throughput());
    }
    lwsnap_trace::drain(); // leave the process-global rings empty

    let overhead = 1.0 - best_on / best_off;
    println!(
        "traced off: {best_off:>9.0} q/s (best of {iters})\n\
         traced on:  {best_on:>9.0} q/s (best of {iters})\n\
         recorder overhead: {:+.2}%",
        overhead * 100.0,
    );
    if std::env::var_os("TRACE_GATE").is_some() {
        assert!(
            best_on >= best_off * 0.95,
            "tracing overhead {:.2}% exceeds the 5% budget",
            overhead * 100.0,
        );
        println!("TRACE_GATE: within the 5% budget");
    }
}
