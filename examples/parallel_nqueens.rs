//! Parallel n-queens: Figure 1 on N worker threads.
//!
//! Demonstrates the work-stealing [`ParallelEngine`]: the same SVM-64
//! n-queens guest as `quickstart`, but with extension steps evaluated by
//! a pool of workers sharing immutable snapshots. The transcript is
//! deterministic — byte-identical to the sequential DFS run — because
//! results are merged in tree-path order.
//!
//! ```sh
//! cargo run --release --example parallel_nqueens [N] [WORKERS]
//! ```

use lwsnap_core::{strategy::Dfs, Engine, ParallelEngine};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });

    let program = assemble_source(&nqueens_source(n, true, true)).expect("n-queens assembles");

    // Sequential baseline.
    let start = std::time::Instant::now();
    let sequential = Engine::new(Dfs::new()).run(&mut Interp::new(), program.boot().unwrap());
    let sequential_time = start.elapsed();

    // Parallel run: each worker builds its own interpreter; snapshots
    // are shared immutably between threads.
    let start = std::time::Instant::now();
    let parallel = ParallelEngine::new(workers).run(Interp::new, program.boot().unwrap());
    let parallel_time = start.elapsed();

    assert_eq!(
        parallel.transcript, sequential.transcript,
        "deterministic merge must reproduce the sequential transcript"
    );

    print!("{}", parallel.transcript_str());
    println!("--------------------------------------------------");
    println!(
        "{n}-queens: {} solutions | sequential {sequential_time:?} | {workers} workers {parallel_time:?}",
        parallel.stats.solutions
    );
    println!(
        "speedup: {:.2}x | transcripts identical: yes",
        sequential_time.as_secs_f64() / parallel_time.as_secs_f64()
    );
    for (id, w) in parallel.worker_stats.iter().enumerate() {
        println!(
            "  worker {id}: {} extension steps, {} restores, {} inline continues, {} failed paths",
            w.extensions_evaluated, w.restores, w.inline_continues, w.failures
        );
    }
    println!(
        "snapshots: {} created, peak {} live, frontier peak {}",
        parallel.stats.snapshots_created,
        parallel.stats.snapshots_peak,
        parallel.stats.frontier_peak
    );
}
