//! Vendored offline shim for the `rand` crate (0.8-flavoured API).
//!
//! Implements exactly what the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges,
//! and `Rng::gen_bool`. The generator is SplitMix64 — deterministic,
//! fast, and statistically fine for workload generation (it is NOT
//! cryptographic, and neither is the use the workspace makes of it).

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// An integer range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// True when the range contains no values.
    fn is_empty_range(&self) -> bool;
}

/// Rejection-free (modulo-bias-free) draw of a value below `n` (n > 0).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's method: multiply-shift with a rejection zone.
    let zone = n.wrapping_neg() % n; // 2^64 mod n
    loop {
        let x = rng.next_u64();
        let m = x as u128 * n as u128;
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, width) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start >= self.end
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Full 64-bit span: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (start as i128 + below(rng, width as u64) as i128) as $t
            }
            fn is_empty_range(&self) -> bool {
                self.start() > self.end()
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from an integer range (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.gen_range(1i64..=10);
            assert!((1..=10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn full_range_inclusive_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
