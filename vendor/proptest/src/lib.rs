//! Vendored offline shim for the `proptest` crate.
//!
//! Implements the API surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_filter_map`, integer-range
//! and tuple strategies, [`any`], [`Just`], `collection::vec`, the
//! `prop_oneof!` / `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case panics with the generated inputs
//!   `Debug`-printed, but is not minimised.
//! * **Deterministic seeding** — every test function derives its RNG
//!   seed from its own name, so runs are reproducible by construction
//!   (and CI failures reproduce locally). Set `PROPTEST_SEED` to vary.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// SplitMix64 generator driving all sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the per-test seed: FNV-1a of the test name mixed with the
    /// case index, XORed with `PROPTEST_SEED` when set.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let env = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng::new(h ^ env ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (n > 0), bias-corrected.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = n.wrapping_neg() % n;
        loop {
            let m = self.next_u64() as u128 * n as u128;
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values `f` maps to `Some`, resampling otherwise.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values satisfying `f`, resampling otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.sample(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map {:?}: rejection rate too high", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?}: rejection rate too high", self.whence);
    }
}

/// Weighted union of boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union from weighted arms. Panics if empty or all-zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

// Integer ranges.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(width as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Marker returned by [`any`], sampling the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the entire domain of `T` (the subset of types the
/// workspace uses).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<char> {
    type Value = char;
    fn sample(&self, rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated text debuggable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "cannot sample empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy generating `Vec`s of `elem` values with lengths in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S, impl SizeRange> {
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config & prelude
// ---------------------------------------------------------------------

/// Runner configuration (the subset the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Weighted choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Property assertion (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (no shrinking: delegates to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` sampled cases. Failing
/// inputs are printed (not shrunk).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@runner ($config); $($rest)*);
    };
    (
        @runner ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    // Render inputs before the body may move them.
                    let mut case_desc = String::new();
                    $(case_desc.push_str(&format!(
                        "    {} = {:?}\n", stringify!($arg), &$arg));)+
                    let result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(move || $body)
                    );
                    if let Err(payload) = result {
                        eprintln!("proptest case {case} failed for inputs:\n{case_desc}");
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@runner ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = crate::Strategy::sample(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let w = crate::Strategy::sample(&(1u8..=10), &mut rng);
            assert!((1..=10).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let strat = crate::collection::vec(any::<u8>(), 3..7);
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = crate::Strategy::sample(&strat, &mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![
            1 => Just(0u8),
            1 => Just(1u8),
            2 => Just(2u8),
        ];
        let mut rng = crate::TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[crate::Strategy::sample(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn filter_map_resamples() {
        let strat = (0u8..100).prop_filter_map("even", |v| (v % 2 == 0).then_some(v));
        let mut rng = crate::TestRng::new(4);
        for _ in 0..100 {
            assert_eq!(crate::Strategy::sample(&strat, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_cases(a in 0i64..10, b in proptest::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b.len() < 4);
        }
    }

    // Self-use of the crate name inside its own tests needs an alias.
    use crate as proptest;
}
