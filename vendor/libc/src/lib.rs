//! Vendored offline shim for the `libc` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate declares exactly the FFI surface the workspace uses
//! (`lwsnap-osnative`'s mmap/signal/fork syscalls plus the socket
//! surface the `polling` shim's `SO_REUSEPORT` listener helper needs),
//! with struct layouts matching glibc on 64-bit Linux. It is NOT a
//! general-purpose libc binding — do not grow it beyond what the
//! workspace needs (see vendor/README.md).

#![allow(non_camel_case_types)]
#![cfg(all(target_os = "linux", target_pointer_width = "64"))]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type pid_t = i32;
pub type sighandler_t = size_t;

pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;
pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;
pub const SIGSEGV: c_int = 11;
pub const SA_SIGINFO: c_int = 0x0000_0004;
pub const SIG_DFL: sighandler_t = 0;

// Socket surface (x86-64 Linux values) for the reactor-per-core front
// end: enough to open an `AF_INET` listener with `SO_REUSEPORT` set
// before bind, so N reactors can share one port and the kernel shards
// incoming connections across their accept queues.
pub type socklen_t = u32;
pub type sa_family_t = u16;
pub type in_port_t = u16;
pub type in_addr_t = u32;

pub const AF_INET: c_int = 2;
pub const SOCK_STREAM: c_int = 1;
pub const SOCK_CLOEXEC: c_int = 0o2000000;
pub const SOL_SOCKET: c_int = 1;
pub const SO_REUSEADDR: c_int = 2;
pub const SO_REUSEPORT: c_int = 15;

/// `struct in_addr`: the IPv4 address in network byte order.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct in_addr {
    pub s_addr: in_addr_t,
}

/// `struct sockaddr_in` (16 bytes on Linux).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr_in {
    pub sin_family: sa_family_t,
    /// Port in network byte order.
    pub sin_port: in_port_t,
    pub sin_addr: in_addr,
    pub sin_zero: [u8; 8],
}

/// Opaque `struct sockaddr` for the generic bind signature.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sockaddr {
    pub sa_family: sa_family_t,
    pub sa_data: [u8; 14],
}

/// glibc `sigset_t`: 1024 bits.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

/// glibc `struct sigaction` on 64-bit Linux.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigaction {
    pub sa_sigaction: sighandler_t,
    pub sa_mask: sigset_t,
    pub sa_flags: c_int,
    pub sa_restorer: Option<extern "C" fn()>,
}

/// glibc `siginfo_t` on 64-bit Linux: three ints, padding to an 8-byte
/// boundary, then the 112-byte `_sifields` union.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct siginfo_t {
    pub si_signo: c_int,
    pub si_errno: c_int,
    pub si_code: c_int,
    _pad: c_int,
    _sifields: [usize; 14],
}

impl siginfo_t {
    /// The fault address, valid for SIGSEGV/SIGBUS delivered with
    /// `SA_SIGINFO` (first field of the `_sigfault` arm of the union).
    ///
    /// # Safety
    ///
    /// Only meaningful for signals whose `_sifields` arm starts with an
    /// address (SIGSEGV, SIGBUS), mirroring the real libc crate.
    pub unsafe fn si_addr(&self) -> *mut c_void {
        self._sifields[0] as *mut c_void
    }
}

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn sigaction(signum: c_int, act: *const sigaction, oldact: *mut sigaction) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn raise(sig: c_int) -> c_int;
    pub fn fork() -> pid_t;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn _exit(status: c_int) -> !;
    pub fn pipe(fds: *mut c_int) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    pub fn setsockopt(
        socket: c_int,
        level: c_int,
        name: c_int,
        value: *const c_void,
        option_len: socklen_t,
    ) -> c_int;
    pub fn bind(socket: c_int, address: *const sockaddr, address_len: socklen_t) -> c_int;
    pub fn listen(socket: c_int, backlog: c_int) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigaction_layout_matches_glibc() {
        // glibc x86_64: handler (8) + mask (128) + flags (4, padded) +
        // restorer (8) = 152 bytes.
        assert_eq!(std::mem::size_of::<sigaction>(), 152);
        assert_eq!(std::mem::size_of::<sigset_t>(), 128);
    }

    #[test]
    fn siginfo_layout_matches_glibc() {
        assert_eq!(std::mem::size_of::<siginfo_t>(), 128);
        // si_addr must sit at offset 16 (after signo/errno/code + pad).
        let mut si: siginfo_t = unsafe { std::mem::zeroed() };
        si._sifields[0] = 0xdead_beef;
        assert_eq!(unsafe { si.si_addr() } as usize, 0xdead_beef);
    }

    #[test]
    fn sockaddr_in_layout_matches_glibc() {
        // Linux: family (2) + port (2) + addr (4) + zero pad (8) = 16
        // bytes, same size as the generic sockaddr. Getting this wrong
        // makes bind() reject (or worse, misparse) the address.
        assert_eq!(std::mem::size_of::<sockaddr_in>(), 16);
        assert_eq!(std::mem::size_of::<sockaddr>(), 16);
        assert_eq!(std::mem::offset_of!(sockaddr_in, sin_port), 2);
        assert_eq!(std::mem::offset_of!(sockaddr_in, sin_addr), 4);
    }

    #[test]
    fn reuseport_socket_binds_twice() {
        // Two SO_REUSEPORT sockets may share one ephemeral port — the
        // kernel contract the reactor-per-core listener fan-out needs.
        unsafe {
            let s1 = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            assert!(s1 >= 0);
            let one: c_int = 1;
            assert_eq!(
                setsockopt(
                    s1,
                    SOL_SOCKET,
                    SO_REUSEPORT,
                    &one as *const c_int as *const c_void,
                    std::mem::size_of::<c_int>() as socklen_t,
                ),
                0
            );
            let mut addr: sockaddr_in = std::mem::zeroed();
            addr.sin_family = AF_INET as sa_family_t;
            addr.sin_port = 0;
            addr.sin_addr.s_addr = u32::from_be_bytes([127, 0, 0, 1]).to_be();
            assert_eq!(
                bind(
                    s1,
                    &addr as *const sockaddr_in as *const sockaddr,
                    std::mem::size_of::<sockaddr_in>() as socklen_t,
                ),
                0
            );
            assert_eq!(listen(s1, 16), 0);
            // Recover the kernel-chosen port via std (same process).
            let l1 = {
                use std::os::unix::io::FromRawFd;
                std::net::TcpListener::from_raw_fd(s1)
            };
            let port = l1.local_addr().unwrap().port();

            let s2 = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            assert!(s2 >= 0);
            assert_eq!(
                setsockopt(
                    s2,
                    SOL_SOCKET,
                    SO_REUSEPORT,
                    &one as *const c_int as *const c_void,
                    std::mem::size_of::<c_int>() as socklen_t,
                ),
                0
            );
            addr.sin_port = port.to_be();
            assert_eq!(
                bind(
                    s2,
                    &addr as *const sockaddr_in as *const sockaddr,
                    std::mem::size_of::<sockaddr_in>() as socklen_t,
                ),
                0,
                "second SO_REUSEPORT bind to port {port} failed"
            );
            assert_eq!(listen(s2, 16), 0);
            close(s2);
        }
    }

    #[test]
    fn mmap_roundtrip_works() {
        unsafe {
            let p = mmap(
                std::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 42;
            assert_eq!(*(p as *const u8), 42);
            assert_eq!(munmap(p, 4096), 0);
        }
    }
}
