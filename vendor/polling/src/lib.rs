//! Vendored offline shim for the `polling` crate (2.x API surface).
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate wraps exactly the readiness-notification surface the
//! `lwsnap-service` reactor uses: a [`Poller`] over Linux `epoll(7)`
//! with an `eventfd(2)`-based [`Poller::notify`] wakeup. It is NOT a
//! general-purpose polling library — do not grow it beyond what the
//! workspace needs (see vendor/README.md).
//!
//! ## Semantics (matching `polling` 2.x)
//!
//! * Sources are registered in **oneshot** mode (`EPOLLONESHOT`):
//!   after an event for a key is delivered, interest in that source is
//!   disabled until re-armed with [`Poller::modify`].
//! * [`Poller::notify`] wakes a concurrent or future [`Poller::wait`];
//!   notifications coalesce and are consumed by the wakeup.
//! * Error/hangup conditions are surfaced as both `readable` and
//!   `writable` so the caller observes them through its next I/O call,
//!   exactly like the real crate.
//! * **Multi-instance**: every [`Poller::new`] is an independent epoll
//!   instance with its own notify channel — a process may run one
//!   poller per reactor thread, each watching a disjoint set of
//!   sources, and a `notify` wakes exactly its own `wait` (tested
//!   below). Nothing is process-global.
//!
//! The epoll/eventfd FFI declarations live here; the socket calls for
//! [`bind_reuseport`] come from the vendored `libc` shim. Layout tests
//! below pin the packed `epoll_event` ABI that x86-64 Linux requires.

#![cfg(all(target_os = "linux", target_pointer_width = "64"))]
#![allow(non_camel_case_types)]

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw epoll / eventfd FFI (x86-64 Linux, glibc-compatible).
// ---------------------------------------------------------------------

type c_int = i32;
type c_uint = u32;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// `struct epoll_event` — packed on x86-64 (12 bytes), per `epoll_ctl(2)`.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct epoll_event {
    events: u32,
    u64: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------

/// Interest in (or occurrence of) readiness events on a source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The key passed to [`Poller::add`] / [`Poller::modify`].
    pub key: usize,
    /// Readable readiness.
    pub readable: bool,
    /// Writable readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (the source stays registered but silent until
    /// re-armed with [`Poller::modify`]).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    fn to_epoll(self) -> u32 {
        let mut ev = EPOLLONESHOT | EPOLLRDHUP;
        if self.readable {
            ev |= EPOLLIN;
        }
        if self.writable {
            ev |= EPOLLOUT;
        }
        ev
    }
}

/// The key the internal notify eventfd is registered under; never
/// surfaced to callers (matches the real crate's reserved `usize::MAX`).
const NOTIFY_KEY: usize = usize::MAX;

/// A readiness poller over epoll, with a `notify` wakeup channel.
pub struct Poller {
    epfd: RawFd,
    notify_fd: RawFd,
}

// The fds are plain kernel handles; the epoll set is thread-safe.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a poller with its notify channel armed.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: plain syscalls; fds are owned by the Poller and closed
        // in Drop.
        unsafe {
            let epfd = cvt(epoll_create1(EPOLL_CLOEXEC))?;
            let notify_fd = match cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
                Ok(fd) => fd,
                Err(e) => {
                    close(epfd);
                    return Err(e);
                }
            };
            // Level-triggered, persistent interest: wakeups must never be
            // lost to a missing re-arm.
            let mut ev = epoll_event {
                events: EPOLLIN,
                u64: NOTIFY_KEY as u64,
            };
            if let Err(e) = cvt(epoll_ctl(epfd, EPOLL_CTL_ADD, notify_fd, &mut ev)) {
                close(notify_fd);
                close(epfd);
                return Err(e);
            }
            Ok(Poller { epfd, notify_fd })
        }
    }

    fn ctl(&self, op: c_int, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
        let mut ev = interest.map(|i| epoll_event {
            events: i.to_epoll(),
            u64: i.key as u64,
        });
        let ptr = ev
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut epoll_event);
        // SAFETY: fd is a live descriptor supplied by the caller via
        // AsRawFd; epoll copies the event struct before returning.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Registers a source with an initial (oneshot) interest.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(interest))
    }

    /// Re-arms a registered source with a new (oneshot) interest.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(interest))
    }

    /// Deregisters a source.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Waits for events, appending them to `events`; returns how many
    /// arrived. `None` blocks until an event or a [`Poller::notify`];
    /// `Some(t)` bounds the wait. A notification wakes the call and is
    /// consumed without surfacing an event.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so tiny timeouts still sleep, matching polling.
            Some(t) => t.as_millis().min(i32::MAX as u128) as c_int,
        };
        let mut buf = [epoll_event { events: 0, u64: 0 }; 64];
        // SAFETY: buf outlives the call; the kernel writes at most
        // `buf.len()` entries.
        let n = loop {
            let ret =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let mut delivered = 0;
        for ev in &buf[..n] {
            let key = ev.u64 as usize;
            if key == NOTIFY_KEY {
                // Drain the eventfd counter so the next notify re-fires.
                let mut scratch = [0u8; 8];
                // SAFETY: 8-byte read into a stack buffer; EAGAIN (already
                // drained by a racing wait) is fine.
                unsafe {
                    read(self.notify_fd, scratch.as_mut_ptr(), scratch.len());
                }
                continue;
            }
            let err = ev.events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
            events.push(Event {
                key,
                readable: ev.events & EPOLLIN != 0 || err,
                writable: ev.events & EPOLLOUT != 0 || err,
            });
            delivered += 1;
        }
        Ok(delivered)
    }

    /// Wakes a concurrent or future [`Poller::wait`]. Notifications
    /// coalesce; this never blocks.
    pub fn notify(&self) -> io::Result<()> {
        let one = 1u64.to_ne_bytes();
        // SAFETY: 8-byte write to an owned eventfd; EAGAIN means the
        // counter is saturated, which still wakes the waiter.
        let ret = unsafe { write(self.notify_fd, one.as_ptr(), one.len()) };
        if ret < 0 {
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::WouldBlock {
                return Err(e);
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: both fds are owned by this Poller and closed once.
        unsafe {
            close(self.notify_fd);
            close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------
// SO_REUSEPORT listener fan-out.
// ---------------------------------------------------------------------

/// Binds an IPv4 TCP listener with `SO_REUSEPORT` set before `bind`,
/// so several listeners (one per reactor) can share one port and the
/// kernel shards incoming connections across their accept queues by
/// 4-tuple hash. Safe wrapper over the `libc` shim's socket calls —
/// exposed here because the service crate forbids `unsafe`.
///
/// IPv6 addresses are rejected with `Unsupported` (the shim only
/// declares `sockaddr_in`); callers fall back to a single listener.
pub fn bind_reuseport(addr: std::net::SocketAddr) -> io::Result<std::net::TcpListener> {
    use std::net::TcpListener;
    use std::os::unix::io::FromRawFd;

    let std::net::SocketAddr::V4(v4) = addr else {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "bind_reuseport: IPv4 only",
        ));
    };
    // SAFETY: plain syscalls on an fd we own; on any failure the fd is
    // closed before returning, on success its ownership moves into the
    // returned TcpListener via from_raw_fd.
    unsafe {
        let fd = libc::socket(libc::AF_INET, libc::SOCK_STREAM | libc::SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            libc::close(fd);
            e
        };
        let one: libc::c_int = 1;
        for opt in [libc::SO_REUSEADDR, libc::SO_REUSEPORT] {
            if libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                opt,
                &one as *const libc::c_int as *const libc::c_void,
                std::mem::size_of::<libc::c_int>() as libc::socklen_t,
            ) != 0
            {
                return Err(fail(fd));
            }
        }
        let sa = libc::sockaddr_in {
            sin_family: libc::AF_INET as libc::sa_family_t,
            sin_port: v4.port().to_be(),
            sin_addr: libc::in_addr {
                s_addr: u32::from(*v4.ip()).to_be(),
            },
            sin_zero: [0; 8],
        };
        if libc::bind(
            fd,
            &sa as *const libc::sockaddr_in as *const libc::sockaddr,
            std::mem::size_of::<libc::sockaddr_in>() as libc::socklen_t,
        ) != 0
        {
            return Err(fail(fd));
        }
        if libc::listen(fd, 1024) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_event_layout_is_packed() {
        // x86-64 Linux packs epoll_event to 12 bytes (no padding before
        // the u64); getting this wrong corrupts every delivered key.
        assert_eq!(std::mem::size_of::<epoll_event>(), 12);
    }

    #[test]
    fn notify_wakes_wait() {
        let poller = Poller::new().unwrap();
        poller.notify().unwrap();
        let mut events = Vec::new();
        // The pending notification must wake an infinite wait without
        // surfacing an event.
        let n = poller.wait(&mut events, None).unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        // Consumed: the next bounded wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn notify_from_another_thread_wakes_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        waker.join().unwrap();
    }

    #[test]
    fn oneshot_readability_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Oneshot: without a re-arm, more data does not re-fire.
        let mut buf = [0u8; 8];
        let mut srv = &server;
        assert_eq!(srv.read(&mut buf).unwrap(), 4);
        client.write_all(b"pong").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty(), "oneshot interest must not re-fire");

        // Re-armed interest fires for the buffered bytes.
        poller.modify(&server, Event::readable(7)).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        poller.delete(&server).unwrap();
    }

    #[test]
    fn pollers_are_independent_instances() {
        // Two pollers in one process: each sees only its own sources,
        // and a notify wakes only its own wait — the contract the
        // reactor-per-core front end leans on.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut c1 = TcpStream::connect(addr).unwrap();
        let mut c2 = TcpStream::connect(addr).unwrap();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        s1.set_nonblocking(true).unwrap();
        s2.set_nonblocking(true).unwrap();

        let pa = Poller::new().unwrap();
        let pb = Poller::new().unwrap();
        pa.add(&s1, Event::readable(1)).unwrap();
        pb.add(&s2, Event::readable(1)).unwrap();

        // Same key on both pollers, but only B's source speaks: A stays
        // silent, B fires.
        c2.write_all(b"hi").unwrap();
        let mut events = Vec::new();
        pa.wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty(), "poller A saw poller B's source");
        pb.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 1);

        // notify() is per-instance: B's pending notify must not wake A.
        pb.notify().unwrap();
        events.clear();
        c1.write_all(b"yo").unwrap();
        pa.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1, "A wakes for its own source only");
        events.clear();
        pb.wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty(), "B's wakeup was its own notify");
    }

    #[test]
    fn reuseport_listeners_share_a_port() {
        let l1 = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = l1.local_addr().unwrap();
        let l2 = bind_reuseport(addr).unwrap();
        assert_eq!(l2.local_addr().unwrap(), addr);
        // Connections land on exactly one of the two accept queues.
        l1.set_nonblocking(true).unwrap();
        l2.set_nonblocking(true).unwrap();
        let mut conns = Vec::new();
        for _ in 0..8 {
            conns.push(TcpStream::connect(addr).unwrap());
        }
        std::thread::sleep(Duration::from_millis(50));
        let mut accepted = 0;
        for l in [&l1, &l2] {
            loop {
                match l.accept() {
                    Ok(_) => accepted += 1,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("accept failed: {e}"),
                }
            }
        }
        assert_eq!(accepted, 8, "every connection reaches some listener");
        // IPv6 is explicitly unsupported, not silently wrong.
        let v6 = bind_reuseport("[::1]:0".parse().unwrap());
        assert_eq!(v6.unwrap_err().kind(), io::ErrorKind::Unsupported);
    }

    #[test]
    fn writable_interest_fires_and_none_is_silent() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        // A fresh socket's send buffer is empty, so writable fires.
        poller.add(&client, Event::writable(3)).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);

        // Event::none parks the source without deregistering it.
        poller.modify(&client, Event::none(3)).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .unwrap();
        assert!(events.is_empty());
        poller.modify(&client, Event::writable(3)).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }
}
