//! Vendored offline shim for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` — with a multi-sample wall-clock measurement loop in
//! place of Criterion's full statistical machinery. Each benchmark is
//! timed as S samples of k iterations; the report carries the median,
//! minimum and mean ± standard deviation of the per-iteration time, so
//! two runs (e.g. sequential vs sharded service) are comparable beyond
//! a single noisy mean.
//!
//! Behavioural contract kept from real Criterion:
//!
//! * `--test` (as in `cargo bench -- --test`) runs every benchmark body
//!   exactly once and reports `ok`, so CI can smoke-test benches cheaply;
//! * a positional CLI argument filters benchmarks by substring;
//! * benchmark IDs render as `group/function/parameter`.
//!
//! Beyond real Criterion, the shim emits a machine-readable report: when
//! the `BENCH_JSON_DIR` environment variable names a directory, a full
//! (non-`--test`) run writes `BENCH_<bench-name>.json` there with
//! min/median/mean/stddev nanoseconds per benchmark, so successive PRs
//! accumulate a comparable perf trajectory. And when
//! `BENCH_BASELINE_DIR` names a directory holding a *prior* run's
//! `BENCH_*.json` files (e.g. a downloaded CI artifact), the run ends
//! by diffing itself against that baseline, printing a per-benchmark
//! median delta — the in-harness cross-run comparison real Criterion
//! does with `--baseline`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        let mut s = group.to_owned();
        if let Some(f) = &self.function {
            let _ = write!(s, "/{f}");
        }
        if let Some(p) = &self.parameter {
            let _ = write!(s, "/{p}");
        }
        s
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One measured benchmark, retained for the JSON report.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    stats: SampleStats,
}

/// Shared measurement configuration and CLI state.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    measurement_time: Duration,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
            measurement_time: Duration::from_millis(500),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process CLI arguments, accepting
    /// (and where irrelevant, ignoring) the flags cargo and real
    /// Criterion pass: `--bench`, `--test`, `--exact`, value-taking
    /// tuning flags, and a positional name filter.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" | "--exact" | "--verbose" | "--quiet" | "--noplot" | "--list"
                | "--discard-baseline" => {}
                "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--sample-size"
                | "--measurement-time"
                | "--warm-up-time"
                | "--profile-time"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level"
                | "--output-format"
                | "--color"
                | "--plotting-backend" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                positional => {
                    if c.filter.is_none() {
                        c.filter = Some(positional.to_owned());
                    }
                }
            }
        }
        c
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let name = id.render("");
        let name = name.trim_start_matches('/').to_owned();
        run_one(self, &name, 20, None, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }

    /// Writes `BENCH_<bench-name>.json` into `$BENCH_JSON_DIR` (if set)
    /// with every measured benchmark's min/median/mean/stddev, for
    /// cross-PR perf trajectories. Called by `criterion_main!` after all
    /// groups have run; a no-op in `--test` mode (nothing is measured)
    /// or when the env var is absent.
    pub fn write_json_report(&self) {
        let Ok(dir) = std::env::var("BENCH_JSON_DIR") else {
            return;
        };
        if self.records.is_empty() {
            return;
        }
        let name = bench_binary_name();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
        let json = render_json_report(&name, &self.records);
        match std::fs::write(&path, json) {
            Ok(()) => println!("bench report: {}", path.display()),
            Err(err) => eprintln!("bench report write failed ({}): {err}", path.display()),
        }
    }

    /// Diffs this run against a prior run's `BENCH_<bench-name>.json`
    /// in `$BENCH_BASELINE_DIR` (if both exist), printing one
    /// median-delta line per benchmark. New benchmarks (absent from the
    /// baseline) and vanished ones are called out rather than silently
    /// skipped. A no-op when the env var is unset, in `--test` mode
    /// (nothing measured), or when the baseline file is missing.
    ///
    /// When `$BENCH_FAIL_THRESHOLD` is also set (a percentage, e.g.
    /// `25`), this becomes a **regression gate**: after the full delta
    /// table has been printed, the process exits non-zero if any
    /// benchmark's median regressed past the threshold. The table is
    /// always printed first — a failing gate never hides the numbers.
    pub fn compare_with_baseline(&self) {
        let Ok(dir) = std::env::var("BENCH_BASELINE_DIR") else {
            return;
        };
        if self.records.is_empty() {
            return;
        }
        let name = bench_binary_name();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{name}.json"));
        let baseline = match std::fs::read_to_string(&path) {
            Ok(json) => parse_json_report(&json),
            Err(err) => {
                println!("bench baseline: none at {} ({err})", path.display());
                return;
            }
        };
        println!("baseline deltas vs {}:", path.display());
        for rec in &self.records {
            let now = rec.stats.median;
            match baseline.iter().find(|(n, _)| n == &rec.name) {
                Some(&(_, then_ns)) if then_ns > 0 => {
                    let then = Duration::from_nanos(then_ns.min(u64::MAX as u128) as u64);
                    let delta =
                        (now.as_secs_f64() - then.as_secs_f64()) / then.as_secs_f64() * 100.0;
                    println!(
                        "{:<60} {now:>12.2?} vs {then:>12.2?} ({delta:+.1}%)",
                        rec.name
                    );
                }
                Some(_) => println!("{:<60} baseline median was zero", rec.name),
                None => println!("{:<60} NEW (not in baseline)", rec.name),
            }
        }
        for (name, _) in &baseline {
            if !self.records.iter().any(|r| &r.name == name) {
                println!("{name:<60} VANISHED (in baseline, not in this run)");
            }
        }
        let Ok(raw) = std::env::var("BENCH_FAIL_THRESHOLD") else {
            return;
        };
        let Ok(threshold) = raw.parse::<f64>() else {
            eprintln!("BENCH_FAIL_THRESHOLD={raw:?} is not a number; gate skipped");
            return;
        };
        let current: Vec<(String, u128)> = self
            .records
            .iter()
            .map(|r| (r.name.clone(), r.stats.median.as_nanos()))
            .collect();
        let offenders = median_regressions(&current, &baseline, threshold);
        if offenders.is_empty() {
            println!("bench regression gate: OK (threshold {threshold}%)");
        } else {
            eprintln!(
                "bench regression gate FAILED: {} benchmark(s) regressed past {threshold}%:",
                offenders.len()
            );
            for (name, delta) in &offenders {
                eprintln!("  {name}: {delta:+.1}%");
            }
            std::process::exit(1);
        }
    }
}

/// Benchmarks whose median regressed (slowed down) by more than
/// `threshold` percent versus the baseline, as `(name, delta%)` pairs.
/// Benchmarks missing from either side — or with a zero baseline — are
/// not regressions (the delta table calls them out separately); only a
/// measured slowdown can fail the gate.
pub fn median_regressions(
    current: &[(String, u128)],
    baseline: &[(String, u128)],
    threshold: f64,
) -> Vec<(String, f64)> {
    current
        .iter()
        .filter_map(|(name, now_ns)| {
            let &(_, then_ns) = baseline.iter().find(|(n, _)| n == name)?;
            if then_ns == 0 {
                return None;
            }
            let delta = (*now_ns as f64 - then_ns as f64) / then_ns as f64 * 100.0;
            (delta > threshold).then(|| (name.clone(), delta))
        })
        .collect()
}

/// The bench binary's logical name: `argv[0]`'s file stem minus cargo's
/// trailing `-<16 hex>` disambiguation hash (when present).
fn bench_binary_name() -> String {
    let arg0 = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&arg0)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    strip_cargo_hash(stem).to_owned()
}

/// Strips cargo's `-<16 hex>` target-disambiguation suffix from a file
/// stem, if present.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    }
}

/// Minimal JSON escaping for benchmark names (quotes and backslashes;
/// names are otherwise printable ASCII by construction).
fn escape_json(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json_report(bench: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"bench\":\"{}\",\"results\":[", escape_json(bench));
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = &rec.stats;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\
             \"stddev_ns\":{},\"samples\":{},\"iters_per_sample\":{}}}",
            escape_json(&rec.name),
            s.min.as_nanos(),
            s.median.as_nanos(),
            s.mean.as_nanos(),
            s.stddev.as_nanos(),
            s.samples,
            s.iters_per_sample,
        );
    }
    out.push_str("]}\n");
    out
}

/// Undoes [`escape_json`] (the only escapes the writer emits).
fn unescape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Parses a report written by [`render_json_report`] back into
/// `(benchmark name, median nanoseconds)` pairs. A scanner for exactly
/// the shim's own fixed output shape — not a general JSON parser (the
/// workspace builds offline, without serde); unknown or malformed
/// entries are skipped rather than erroring, so a baseline from an
/// older shim version degrades to "NEW" lines instead of a crash.
fn parse_json_report(json: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"name\":\"") {
        rest = &rest[at + 8..];
        // The name ends at the first unescaped quote.
        let mut end = None;
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' => i += 2,
                b'"' => {
                    end = Some(i);
                    break;
                }
                _ => i += 1,
            }
        }
        let Some(end) = end else { break };
        let name = unescape_json(&rest[..end]);
        rest = &rest[end + 1..];
        // The median belongs to this entry: it must appear before the
        // next entry's name key.
        let scope = rest.find("\"name\":\"").unwrap_or(rest.len());
        if let Some(m) = rest[..scope].find("\"median_ns\":") {
            let digits: String = rest[m + 12..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(median) = digits.parse::<u128>() {
                out.push((name, median));
            }
        }
    }
    out
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples (kept for API compatibility;
    /// the shim uses it to bound the measurement loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the target measurement time (accepted, loosely honoured).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measurement_time = time;
        self
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().render(&self.name);
        run_one(self.criterion, &name, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmarks a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = id.render(&self.name);
        run_one(
            self.criterion,
            &name,
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is per-benchmark in the shim).
    pub fn finish(self) {}
}

/// Per-iteration timing statistics over a run's samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Fastest sample (the least-noise estimate).
    pub min: Duration,
    /// Median sample (the headline number).
    pub median: Duration,
    /// Mean over samples.
    pub mean: Duration,
    /// Population standard deviation over samples.
    pub stddev: Duration,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Summarises per-iteration sample times (`samples` must be non-empty).
fn summarize(per_iter: &[Duration], iters_per_sample: u64) -> SampleStats {
    let mut sorted = per_iter.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let min = sorted[0];
    // Even-length median: mean of the two central samples.
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let mean_s = sorted.iter().map(Duration::as_secs_f64).sum::<f64>() / n as f64;
    let var = sorted
        .iter()
        .map(|d| (d.as_secs_f64() - mean_s).powi(2))
        .sum::<f64>()
        / n as f64;
    SampleStats {
        min,
        median,
        mean: Duration::from_secs_f64(mean_s),
        stddev: Duration::from_secs_f64(var.sqrt()),
        samples: n,
        iters_per_sample,
    }
}

fn run_one<F>(
    criterion: &mut Criterion,
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if !criterion.matches(name) {
        return;
    }
    if criterion.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }
    // Calibrate: run once to estimate per-iteration cost, then split the
    // target measurement time into samples. Slow benches degrade to 2
    // samples of 1 iteration (≈ the cost of the old single-shot loop);
    // fast ones get `sample_size` samples with many iterations each.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let target = criterion.measurement_time;
    // `.max(2)` keeps the clamp well-formed for `sample_size(1)` groups.
    let samples =
        (target.as_nanos() / once.as_nanos()).clamp(2, (sample_size as u128).max(2)) as usize;
    let iters = (target.as_nanos() / (once.as_nanos() * samples as u128)).max(1) as u64;
    let mut per_iter = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed / iters.max(1) as u32);
    }
    let stats = summarize(&per_iter, iters);
    criterion.records.push(BenchRecord {
        name: name.to_owned(),
        stats,
    });
    let spread = format!(
        "min {:.2?}, mean {:.2?} ± {:.2?}, {}×{} iters",
        stats.min, stats.mean, stats.stddev, stats.samples, stats.iters_per_sample
    );
    let median = stats.median;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib_s = n as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            println!("{name:<60} {median:>12.2?}/iter ({spread}, {gib_s:.3} GiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / median.as_secs_f64();
            println!("{name:<60} {median:>12.2?}/iter ({spread}, {elem_s:.0} elem/s)");
        }
        None => {
            println!("{name:<60} {median:>12.2?}/iter ({spread})");
        }
    }
}

/// Declares a benchmark group function compatible with real Criterion's
/// plain form: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench `main` running one or more groups, then emitting
/// the machine-readable report (see [`Criterion::write_json_report`])
/// and the baseline diff (see [`Criterion::compare_with_baseline`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
            criterion.write_json_report();
            criterion.compare_with_baseline();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_renders_group_function_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).render("g"), "g/f/3");
        assert_eq!(BenchmarkId::from_parameter(7).render("g"), "g/7");
        assert_eq!(BenchmarkId::from("name").render("g"), "g/name");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 5);
    }

    #[test]
    fn summarize_reports_min_median_mean_stddev() {
        let ms = Duration::from_millis;
        // Odd count: exact middle element.
        let stats = summarize(&[ms(30), ms(10), ms(20)], 7);
        assert_eq!(stats.min, ms(10));
        assert_eq!(stats.median, ms(20));
        assert_eq!(stats.mean, ms(20));
        assert_eq!(stats.samples, 3);
        assert_eq!(stats.iters_per_sample, 7);
        // Population stddev of {10,20,30}ms = sqrt(200/3) ms ≈ 8.165ms.
        assert!((stats.stddev.as_secs_f64() - 0.008165).abs() < 1e-5);
        // Even count: median interpolates the central pair.
        let stats = summarize(&[ms(10), ms(20), ms(40), ms(30)], 1);
        assert_eq!(stats.median, ms(25));
        // Constant samples: zero spread.
        let stats = summarize(&[ms(5); 4], 1);
        assert_eq!(stats.stddev, Duration::ZERO);
        assert_eq!(stats.median, ms(5));
    }

    #[test]
    fn json_report_renders_all_fields() {
        let ms = Duration::from_millis;
        let records = vec![
            BenchRecord {
                name: "g/locked/4".into(),
                stats: summarize(&[ms(10), ms(20), ms(30)], 7),
            },
            BenchRecord {
                name: "g/\"quoted\"".into(),
                stats: summarize(&[ms(5)], 1),
            },
        ];
        let json = render_json_report("deque_scaling", &records);
        assert!(json.starts_with("{\"bench\":\"deque_scaling\",\"results\":["));
        assert!(json.contains("\"name\":\"g/locked/4\""));
        assert!(json.contains("\"min_ns\":10000000"));
        assert!(json.contains("\"median_ns\":20000000"));
        assert!(json.contains("\"mean_ns\":20000000"));
        assert!(json.contains("\"samples\":3"));
        assert!(json.contains("\"iters_per_sample\":7"));
        assert!(json.contains("\\\"quoted\\\""), "names are JSON-escaped");
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn baseline_parser_roundtrips_the_writer() {
        let ms = Duration::from_millis;
        let records = vec![
            BenchRecord {
                name: "g/cluster/3".into(),
                stats: summarize(&[ms(10), ms(20), ms(30)], 7),
            },
            BenchRecord {
                name: "g/\"quoted\"/1".into(),
                stats: summarize(&[ms(5)], 1),
            },
        ];
        let json = render_json_report("cluster_throughput", &records);
        let parsed = parse_json_report(&json);
        assert_eq!(
            parsed,
            vec![
                ("g/cluster/3".to_owned(), 20_000_000u128),
                ("g/\"quoted\"/1".to_owned(), 5_000_000u128),
            ]
        );
        // Garbage degrades to an empty baseline, not a crash.
        assert_eq!(parse_json_report("{not json"), vec![]);
        assert_eq!(parse_json_report("{\"name\":\"trunc"), vec![]);
    }

    #[test]
    fn binary_name_strips_cargo_hash() {
        assert_eq!(
            strip_cargo_hash("deque_scaling-126f88c5665aa028"),
            "deque_scaling"
        );
        assert_eq!(strip_cargo_hash("fork_baseline"), "fork_baseline");
        assert_eq!(strip_cargo_hash("multi-word-name"), "multi-word-name");
        assert_eq!(
            strip_cargo_hash("name-0123456789abcdeX"),
            "name-0123456789abcdeX",
            "non-hex suffix is kept"
        );
    }

    #[test]
    fn filter_matches_substring() {
        let c = Criterion {
            filter: Some("fork".into()),
            ..Criterion::default()
        };
        assert!(c.matches("e7_fork_baseline/replay/4"));
        assert!(!c.matches("e1_nqueens/prolog"));
    }

    #[test]
    fn regression_gate_flags_only_real_slowdowns() {
        let rec = |name: &str, ns: u128| (name.to_owned(), ns);
        let current = vec![
            rec("g/slow", 130),   // +30% — past a 25% gate
            rec("g/edge", 125),   // exactly +25% — NOT past
            rec("g/fast", 70),    // improvement
            rec("g/new", 999),    // no baseline
            rec("g/zeroed", 999), // zero baseline
        ];
        let baseline = vec![
            rec("g/slow", 100),
            rec("g/edge", 100),
            rec("g/fast", 100),
            rec("g/zeroed", 0),
            rec("g/vanished", 100), // not in current
        ];
        let offenders = median_regressions(&current, &baseline, 25.0);
        assert_eq!(offenders.len(), 1);
        assert_eq!(offenders[0].0, "g/slow");
        assert!((offenders[0].1 - 30.0).abs() < 1e-9);
        // A tighter gate catches the edge case too; a looser one, none.
        assert_eq!(median_regressions(&current, &baseline, 20.0).len(), 2);
        assert!(median_regressions(&current, &baseline, 50.0).is_empty());
    }
}
